package sel

import (
	"fmt"
	"math/bits"
	"sync"
)

// Selection is a set of row positions drawn from the domain [0, n).
// The zero value is an empty selection over an empty domain; use New
// or Get for a sized one.
type Selection struct {
	n     int
	words []uint64
}

// New returns an empty selection over the domain [0, n).
func New(n int) *Selection {
	s := &Selection{}
	s.Reset(n)
	return s
}

var pool = sync.Pool{New: func() any { return &Selection{} }}

// Get returns an empty pooled selection over the domain [0, n).
// Release it when done to keep steady-state scans allocation-free.
func Get(n int) *Selection {
	s := pool.Get().(*Selection)
	s.Reset(n)
	return s
}

// Release clears s and returns it to the pool. The caller must not
// use s afterwards.
func (s *Selection) Release() {
	pool.Put(s)
}

// Reset clears the selection and resizes its domain to [0, n).
// Capacity is retained, so pooled selections reach a steady state
// with no allocation.
func (s *Selection) Reset(n int) {
	if n < 0 {
		n = 0
	}
	s.n = n
	nw := (n + 63) / 64
	if cap(s.words) < nw {
		s.words = make([]uint64, nw)
		return
	}
	s.words = s.words[:nw]
	for i := range s.words {
		s.words[i] = 0
	}
}

// Len returns the domain size n.
func (s *Selection) Len() int { return s.n }

// Add selects row i.
func (s *Selection) Add(i int) {
	s.words[i>>6] |= 1 << (uint(i) & 63)
}

// Contains reports whether row i is selected.
func (s *Selection) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// AddRun selects the contiguous rows [start, start+count). Interior
// words are filled whole, so the cost is O(count/64), not O(count) —
// this is the operation run-structured emitters (RLE runs, inside FOR
// segments, whole blocks) use.
func (s *Selection) AddRun(start, count int) {
	if count <= 0 {
		return
	}
	end := start + count
	firstWord := start >> 6
	lastWord := (end - 1) >> 6
	startBit := uint(start) & 63
	endBits := uint(end-1)&63 + 1 // bits used in the last word
	if firstWord == lastWord {
		s.words[firstWord] |= (allOnes >> (64 - endBits + startBit)) << startBit
		return
	}
	s.words[firstWord] |= allOnes << startBit
	for w := firstWord + 1; w < lastWord; w++ {
		s.words[w] = allOnes
	}
	s.words[lastWord] |= allOnes >> (64 - endBits)
}

const allOnes = ^uint64(0)

// OrWord ORs mask into the selection at bit offset pos: mask bit j
// selects row pos+j. pos need not be word-aligned; bits beyond the
// domain must be zero in mask. This is how the fused
// unpack-and-compare kernels emit one packed block's matches.
func (s *Selection) OrWord(pos int, mask uint64) {
	if mask == 0 {
		return
	}
	word := pos >> 6
	off := uint(pos) & 63
	s.words[word] |= mask << off
	if off != 0 && word+1 < len(s.words) {
		s.words[word+1] |= mask >> (64 - off)
	}
}

// OrAt ORs the whole of o into s with its rows shifted by offset:
// row i of o selects row offset+i of s. It is the block-merge
// operation of the parallel scan: cost O(len(o)/64) regardless of how
// many rows are selected.
func (s *Selection) OrAt(o *Selection, offset int) {
	for w, m := range o.words {
		s.OrWord(offset+w*64, m)
	}
}

// Union ORs o into s. The domains must match.
func (s *Selection) Union(o *Selection) error {
	if o.n != s.n {
		return fmt.Errorf("sel: Union domains differ: %d vs %d", s.n, o.n)
	}
	for w, m := range o.words {
		s.words[w] |= m
	}
	return nil
}

// And intersects s with o in place: a row stays selected only if both
// selections hold it. One AND per word, no allocation — this is the
// conjunction operation of the table scan's per-block predicate
// intersection. The domains must match.
func (s *Selection) And(o *Selection) error {
	if o.n != s.n {
		return fmt.Errorf("sel: And domains differ: %d vs %d", s.n, o.n)
	}
	for w, m := range o.words {
		s.words[w] &= m
	}
	return nil
}

// AndNot removes o's rows from s in place (set difference s \ o), one
// AND-NOT per word. The domains must match.
func (s *Selection) AndNot(o *Selection) error {
	if o.n != s.n {
		return fmt.Errorf("sel: AndNot domains differ: %d vs %d", s.n, o.n)
	}
	for w, m := range o.words {
		s.words[w] &^= m
	}
	return nil
}

// Not complements s in place over its whole domain [0, n): every
// selected row is dropped and every unselected row selected. Bits
// beyond the domain in the last word stay zero, preserving the
// invariant Count relies on. It is how NOT nodes of a predicate tree
// evaluate once their operand's selection is known.
func (s *Selection) Not() {
	for w := range s.words {
		s.words[w] = ^s.words[w]
	}
	if tail := uint(s.n) & 63; tail != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= allOnes >> (64 - tail)
	}
}

// CountRange returns the number of selected rows in [lo, hi), reading
// only the words the range covers (edge words under a mask). It is
// the per-block cardinality probe of the table scan's aggregation
// paths: a block whose range counts zero is never fetched.
func (s *Selection) CountRange(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > s.n {
		hi = s.n
	}
	if lo >= hi {
		return 0
	}
	firstWord := lo >> 6
	lastWord := (hi - 1) >> 6
	startBit := uint(lo) & 63
	endBits := uint(hi-1)&63 + 1
	if firstWord == lastWord {
		m := (allOnes >> (64 - endBits + startBit)) << startBit
		return bits.OnesCount64(s.words[firstWord] & m)
	}
	c := bits.OnesCount64(s.words[firstWord] & (allOnes << startBit))
	for w := firstWord + 1; w < lastWord; w++ {
		c += bits.OnesCount64(s.words[w])
	}
	return c + bits.OnesCount64(s.words[lastWord]&(allOnes>>(64-endBits)))
}

// Words returns the selection's backing bitmap: word w holds rows
// [64w, 64w+64), row i at bit i&63, and bits at or beyond n are
// always zero. The slice is a live view — callers must treat it as
// read-only and must not retain it past the selection's Release. It
// exists for word-at-a-time consumers (masked aggregation over a
// decoded block) that cannot afford a per-row callback.
func (s *Selection) Words() []uint64 { return s.words }

// Count returns the number of selected rows (the rank of the full
// domain), one popcount per word.
func (s *Selection) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Rank returns the number of selected rows strictly below position i.
func (s *Selection) Rank(i int) int {
	if i <= 0 {
		return 0
	}
	if i > s.n {
		i = s.n
	}
	word := i >> 6
	c := 0
	for _, w := range s.words[:word] {
		c += bits.OnesCount64(w)
	}
	if off := uint(i) & 63; off != 0 {
		c += bits.OnesCount64(s.words[word] & (allOnes >> (64 - off)))
	}
	return c
}

// Iterate visits the selected rows in ascending order, stopping early
// if visit returns false.
func (s *Selection) Iterate(visit func(i int) bool) {
	for wi, w := range s.words {
		base := wi << 6
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !visit(base + b) {
				return
			}
			w &= w - 1
		}
	}
}

// AppendRows appends the selected rows, each offset by base, to dst
// in ascending order and returns the extended slice. It is the
// conversion to the public []int64 row-position representation.
func (s *Selection) AppendRows(dst []int64, base int64) []int64 {
	for wi, w := range s.words {
		rowBase := base + int64(wi<<6)
		for w != 0 {
			b := bits.TrailingZeros64(w)
			dst = append(dst, rowBase+int64(b))
			w &= w - 1
		}
	}
	return dst
}

// Rows returns the selected rows as a fresh ascending row-position
// column (empty, non-nil for an empty selection).
func (s *Selection) Rows() []int64 {
	return s.AppendRows(make([]int64, 0, s.Count()), 0)
}
