// Package sel implements bitmap-backed selection vectors.
//
// A Selection is the result of a predicate over a column: one bit per
// row position. The representation is chosen for the compressed-scan
// path (see DESIGN.md, "Selection vectors and scratch pooling"):
//
//   - whole runs of matching rows — RLE runs, fully-inside FOR
//     segments, blocks whose [min, max] sits inside the query range —
//     are emitted with word fills in O(rows/64), not one append per
//     row;
//   - the fused unpack-and-compare kernels of package bitpack produce
//     one 64-bit match mask per packed block, which lands in the
//     bitmap with a single OrWord call;
//   - per-block selections computed by parallel workers merge into the
//     column-level selection with word-granular ORs, independent of
//     how many rows matched.
//
// Selections are pooled (Get/Release) so steady-state scans allocate
// nothing. Conversion to an explicit row-position column ([]int64)
// happens once, at the public API boundary.
package sel
