package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"lwcomp"
)

// testBlock is the block size every test container uses: small enough
// that modest tables span many blocks, so pruning, streaming and
// cancellation seams all see real block iteration.
const testBlock = 256

// writeColumnFile writes vals as a single-column container at path.
// The internal column name is deliberately NOT the served name — the
// mount contract says the filename wins for <table>.<column>.lwc.
func writeColumnFile(t *testing.T, path string, vals []int64) {
	t.Helper()
	col, err := lwcomp.Encode(vals, lwcomp.WithBlockSize(testBlock))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := lwcomp.WriteColumns(f, []lwcomp.NamedColumn{{Name: "payload", Col: col}}); err != nil {
		t.Fatal(err)
	}
}

// testData is the deterministic reference: date climbs slowly, status
// cycles over five values, amount climbs steeply (every block range is
// tight, so mid-range predicates leave real undecided blocks).
type testData struct {
	n                    int
	date, status, amount []int64
}

func makeData(n int) testData {
	d := testData{n: n}
	for i := 0; i < n; i++ {
		d.date = append(d.date, int64(i/4))
		d.status = append(d.status, int64(i%5))
		d.amount = append(d.amount, int64(i)*3-1000)
	}
	return d
}

// newTestDir builds a mount directory with an "orders" table from
// per-column files and an "events" table from one multi-column
// container.
func newTestDir(t *testing.T, d testData) string {
	t.Helper()
	dir := t.TempDir()
	writeColumnFile(t, filepath.Join(dir, "orders.date.lwc"), d.date)
	writeColumnFile(t, filepath.Join(dir, "orders.status.lwc"), d.status)
	writeColumnFile(t, filepath.Join(dir, "orders.amount.lwc"), d.amount)

	tsCol, err := lwcomp.Encode(d.date, lwcomp.WithBlockSize(testBlock))
	if err != nil {
		t.Fatal(err)
	}
	kindCol, err := lwcomp.Encode(d.status, lwcomp.WithBlockSize(testBlock))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, "events.lwc"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	err = lwcomp.WriteColumns(f, []lwcomp.NamedColumn{
		{Name: "ts", Col: tsCol},
		{Name: "kind", Col: kindCol},
	})
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// newTestServer mounts dir and exposes the handler on an httptest
// server, cleaning both up with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// postQuery sends one query and decodes the (single-object) response.
func postQuery(t *testing.T, ts *httptest.Server, req queryRequest) (int, map[string]any) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %d response: %v", resp.StatusCode, err)
	}
	return resp.StatusCode, out
}

// TestCatalog: /tables reports both grouping conventions — per-column
// files under the filename's names, and a multi-column container under
// its internal names — with exact rows, block counts and min/max.
func TestCatalog(t *testing.T) {
	d := makeData(2000)
	_, ts := newTestServer(t, Config{Dir: newTestDir(t, d)})

	resp, err := http.Get(ts.URL + "/tables")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /tables: %d", resp.StatusCode)
	}
	var out struct {
		Tables []catalogTable `json:"tables"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Tables) != 2 {
		t.Fatalf("catalog has %d tables, want 2", len(out.Tables))
	}
	byName := map[string]catalogTable{}
	for _, ct := range out.Tables {
		byName[ct.Name] = ct
	}
	orders, ok := byName["orders"]
	if !ok {
		t.Fatal("catalog lacks table orders")
	}
	if orders.Rows != d.n || !orders.Aligned || len(orders.Columns) != 3 {
		t.Fatalf("orders: rows=%d aligned=%v cols=%d", orders.Rows, orders.Aligned, len(orders.Columns))
	}
	for _, cc := range orders.Columns {
		if cc.Name == "amount" {
			if cc.Min == nil || *cc.Min != -1000 || cc.Max == nil || *cc.Max != int64(d.n-1)*3-1000 {
				t.Fatalf("amount min/max = %v/%v", cc.Min, cc.Max)
			}
			if want := (d.n + testBlock - 1) / testBlock; cc.Blocks != want {
				t.Fatalf("amount blocks = %d, want %d", cc.Blocks, want)
			}
		}
	}
	events := byName["events"]
	if len(events.Columns) != 2 || events.Columns[0].Name != "ts" || events.Columns[1].Name != "kind" {
		t.Fatalf("events columns = %+v", events.Columns)
	}
}

// TestQueryOps: count, sum and rows all agree with the naive reference
// filter, end to end through HTTP.
func TestQueryOps(t *testing.T) {
	d := makeData(3000)
	_, ts := newTestServer(t, Config{Dir: newTestDir(t, d)})

	where := "status = 2 and amount >= 500"
	var wantRows []int64
	var wantSum int64
	for i := 0; i < d.n; i++ {
		if d.status[i] == 2 && d.amount[i] >= 500 {
			wantRows = append(wantRows, int64(i))
			wantSum += d.amount[i]
		}
	}
	if len(wantRows) == 0 {
		t.Fatal("reference predicate selected nothing; bad test data")
	}

	code, out := postQuery(t, ts, queryRequest{Table: "orders", Where: where, Op: "count"})
	if code != http.StatusOK || int64(out["matched"].(float64)) != int64(len(wantRows)) {
		t.Fatalf("count: code=%d matched=%v want %d", code, out["matched"], len(wantRows))
	}

	code, out = postQuery(t, ts, queryRequest{Table: "orders", Where: where, Op: "sum", Columns: []string{"amount", "date"}})
	if code != http.StatusOK {
		t.Fatalf("sum: code=%d body=%v", code, out)
	}
	sums := out["sums"].(map[string]any)
	if int64(sums["amount"].(float64)) != wantSum {
		t.Fatalf("sum(amount) = %v, want %d", sums["amount"], wantSum)
	}

	// rows: NDJSON — header frame, row frames, done frame.
	body, _ := json.Marshal(queryRequest{Table: "orders", Where: where, Op: "rows", Columns: []string{"amount"}, BatchRows: 64})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rows: code=%d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("rows Content-Type = %q", ct)
	}
	gotRows, gotVals, done := parseRowsStream(t, resp.Body, 64)
	if !done {
		t.Fatal("stream ended without a done frame")
	}
	if len(gotRows) != len(wantRows) {
		t.Fatalf("streamed %d rows, want %d", len(gotRows), len(wantRows))
	}
	for i, r := range gotRows {
		if r != wantRows[i] || gotVals[i] != d.amount[r] {
			t.Fatalf("row %d: (%d, %d), want (%d, %d)", i, r, gotVals[i], wantRows[i], d.amount[wantRows[i]])
		}
	}

	// limit truncates the stream but still ends with done.
	body, _ = json.Marshal(queryRequest{Table: "orders", Where: where, Op: "rows", Columns: []string{"amount"}, BatchRows: 16, Limit: 21})
	resp, err = http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	gotRows, _, done = parseRowsStream(t, resp.Body, 16)
	if !done || len(gotRows) != 21 {
		t.Fatalf("limited stream: %d rows done=%v, want 21 rows with done", len(gotRows), done)
	}
}

// parseRowsStream consumes an NDJSON rows response: returns the row
// ids, the first projected column's values, and whether the done frame
// arrived. Frames larger than maxBatch rows fail the test.
func parseRowsStream(t *testing.T, r interface{ Read([]byte) (int, error) }, maxBatch int) (rows, vals []int64, done bool) {
	t.Helper()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if first {
			first = false
			var hdr queryResult
			if err := json.Unmarshal(line, &hdr); err != nil {
				t.Fatalf("bad header frame %s: %v", line, err)
			}
			continue
		}
		var frame struct {
			Rows  []int64   `json:"rows"`
			Cols  [][]int64 `json:"cols"`
			Done  bool      `json:"done"`
			Error string    `json:"error"`
		}
		if err := json.Unmarshal(line, &frame); err != nil {
			t.Fatalf("bad frame %s: %v", line, err)
		}
		if frame.Error != "" {
			t.Fatalf("stream error frame: %s", frame.Error)
		}
		if frame.Done {
			done = true
			continue
		}
		if len(frame.Rows) == 0 || len(frame.Rows) > maxBatch {
			t.Fatalf("frame of %d rows, want 1..%d", len(frame.Rows), maxBatch)
		}
		rows = append(rows, frame.Rows...)
		if len(frame.Cols) > 0 {
			vals = append(vals, frame.Cols[0]...)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return rows, vals, done
}

// TestQueryErrors pins every 4xx contract: bad body, bad op, missing
// columns, unknown table, unknown column, and — with the structured
// offset/token fields — a predicate outside the language.
func TestQueryErrors(t *testing.T) {
	d := makeData(500)
	_, ts := newTestServer(t, Config{Dir: newTestDir(t, d)})

	for _, tc := range []struct {
		name string
		req  queryRequest
		code int
	}{
		{"unknown table", queryRequest{Table: "nope", Op: "count"}, http.StatusNotFound},
		{"unknown op", queryRequest{Table: "orders", Op: "avg"}, http.StatusBadRequest},
		{"sum without columns", queryRequest{Table: "orders", Op: "sum"}, http.StatusBadRequest},
		{"unknown column", queryRequest{Table: "orders", Op: "sum", Columns: []string{"zz"}}, http.StatusBadRequest},
		{"bad predicate", queryRequest{Table: "orders", Op: "count", Where: "status <> 1"}, http.StatusBadRequest},
	} {
		code, body := postQuery(t, ts, tc.req)
		if code != tc.code {
			t.Fatalf("%s: code=%d body=%v, want %d", tc.name, code, body, tc.code)
		}
		if body["error"] == "" {
			t.Fatalf("%s: no error message in %v", tc.name, body)
		}
	}

	// The parse-error body carries the exact byte offset and token.
	code, body := postQuery(t, ts, queryRequest{Table: "orders", Op: "count", Where: "status = 1 and ~ amount"})
	if code != http.StatusBadRequest {
		t.Fatalf("parse error: code=%d", code)
	}
	if off, ok := body["offset"].(float64); !ok || int(off) != 15 {
		t.Fatalf("parse error offset = %v, want 15", body["offset"])
	}
	if body["token"] != "~" {
		t.Fatalf("parse error token = %v, want ~", body["token"])
	}

	// A syntactically invalid body is a 400, not a 500.
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON body: code=%d", resp.StatusCode)
	}
}

// TestDeadline: a server whose query deadline has effectively already
// passed answers 504 — the scan's cancellation seam, observed through
// HTTP — and counts the timeout.
func TestDeadline(t *testing.T) {
	d := makeData(4000)
	srv, ts := newTestServer(t, Config{Dir: newTestDir(t, d), QueryTimeout: time.Nanosecond})

	// A threshold strictly inside a block's range leaves undecided
	// blocks, so the scan must consult the context before fetching.
	where := fmt.Sprintf("amount >= %d", d.amount[2*testBlock+100]+1)
	code, body := postQuery(t, ts, queryRequest{Table: "orders", Where: where, Op: "count"})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("deadline query: code=%d body=%v, want 504", code, body)
	}
	if got := srv.met.timeouts.Load(); got < 1 {
		t.Fatalf("timeouts counter = %d, want >= 1", got)
	}
}

// TestSaturation: with one slot and no queue, a busy server answers
// 429 with a Retry-After header, and recovers the moment the slot
// frees.
func TestSaturation(t *testing.T) {
	d := makeData(500)
	srv, ts := newTestServer(t, Config{Dir: newTestDir(t, d), MaxConcurrent: 1, MaxQueue: -1})

	srv.gate.slots <- struct{}{} // occupy the only slot
	code, body := postQuery(t, ts, queryRequest{Table: "orders", Op: "count"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated query: code=%d body=%v, want 429", code, body)
	}
	resp, err := http.Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"table":"orders","op":"count"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("429 without a usable Retry-After (%q)", ra)
	}
	if got := srv.met.rejected.Load(); got < 2 {
		t.Fatalf("rejected counter = %d, want >= 2", got)
	}

	<-srv.gate.slots // free the slot
	if code, _ := postQuery(t, ts, queryRequest{Table: "orders", Op: "count"}); code != http.StatusOK {
		t.Fatalf("query after slot freed: code=%d, want 200", code)
	}
}

// TestGate unit-tests the admission controller: fast-path admission,
// bounded queueing, saturation rejection, and expiry while queued.
func TestGate(t *testing.T) {
	g := newGate(1, 1)
	if err := g.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	// One waiter fits in the queue; it must block until release.
	waiterErr := make(chan error, 1)
	go func() { waiterErr <- g.acquire(context.Background()) }()
	deadline := time.Now().Add(2 * time.Second)
	for g.waiting() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// The queue is full: the next acquire is rejected in O(1).
	if err := g.acquire(context.Background()); err != errSaturated {
		t.Fatalf("acquire past queue bound = %v, want errSaturated", err)
	}

	g.release()
	if err := <-waiterErr; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	g.release()

	// Expiry while queued surfaces the context error, not a slot.
	if err := g.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := g.acquire(expired); err != context.Canceled {
		t.Fatalf("acquire with expired ctx = %v, want context.Canceled", err)
	}
	if g.waiting() != 0 {
		t.Fatalf("waiting = %d after expiry, want 0", g.waiting())
	}
	g.release()
}

// TestConcurrentQueries hammers one server from many goroutines with
// mixed operations over the shared cache — the test the race detector
// watches.
func TestConcurrentQueries(t *testing.T) {
	d := makeData(4000)
	srv, ts := newTestServer(t, Config{Dir: newTestDir(t, d), MaxConcurrent: 4, MaxQueue: 256})

	where := fmt.Sprintf("amount >= %d and status in (1, 3)", d.amount[d.n/2])
	var wg sync.WaitGroup
	errs := make(chan string, 256)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				var req queryRequest
				switch (g + i) % 3 {
				case 0:
					req = queryRequest{Table: "orders", Where: where, Op: "count"}
				case 1:
					req = queryRequest{Table: "orders", Where: where, Op: "sum", Columns: []string{"amount"}}
				case 2:
					req = queryRequest{Table: "events", Where: "kind = 2", Op: "rows", Columns: []string{"ts"}, BatchRows: 128, Limit: 500}
				}
				body, _ := json.Marshal(req)
				resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err.Error()
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("goroutine %d query %d: status %d", g, i, resp.StatusCode)
				}
				// Drain so keep-alive connections recycle.
				sc := bufio.NewScanner(resp.Body)
				sc.Buffer(make([]byte, 1<<20), 1<<20)
				for sc.Scan() {
				}
				resp.Body.Close()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if srv.met.total.Load() != 8*15 {
		t.Fatalf("total = %d, want %d", srv.met.total.Load(), 8*15)
	}
}

// TestReloadNoFdLeak: 100 reload cycles (each opening four containers)
// leave the process fd table where it started — the observable proof
// that retired mount sets close every file exactly once.
func TestReloadNoFdLeak(t *testing.T) {
	countFds := func() int {
		ents, err := os.ReadDir("/proc/self/fd")
		if err != nil {
			t.Skipf("no /proc/self/fd: %v", err)
		}
		return len(ents)
	}
	d := makeData(1000)
	srv, ts := newTestServer(t, Config{Dir: newTestDir(t, d)})

	// Warm up: one query so pools and the http client exist.
	if code, _ := postQuery(t, ts, queryRequest{Table: "orders", Op: "count"}); code != 200 {
		t.Fatal("warmup query failed")
	}
	before := countFds()
	for i := 0; i < 100; i++ {
		if err := srv.Reload(); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
	}
	// Queries still work on the freshest generation.
	if code, _ := postQuery(t, ts, queryRequest{Table: "orders", Op: "count"}); code != 200 {
		t.Fatal("query after reloads failed")
	}
	after := countFds()
	// Allow a little slack for the http client's connection churn; a
	// leak of one fd per reload cycle would show up as hundreds.
	if after > before+8 {
		t.Fatalf("fd count grew from %d to %d across 100 reloads", before, after)
	}
}

// TestReloadUnderTraffic swaps the mount set while queries are in
// flight: every query must succeed against whichever generation it
// started on.
func TestReloadUnderTraffic(t *testing.T) {
	d := makeData(2000)
	srv, ts := newTestServer(t, Config{Dir: newTestDir(t, d), MaxConcurrent: 4, MaxQueue: 256})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, body := postQuery(t, ts, queryRequest{Table: "orders", Where: "status = 1", Op: "sum", Columns: []string{"amount"}})
				if code != http.StatusOK {
					errs <- fmt.Sprintf("query during reload: %d %v", code, body)
					return
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		if err := srv.Reload(); err != nil {
			t.Fatalf("reload: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestMountNaming: a <table>.<column>.lwc file holding more than one
// column fails the whole mount (half-served tables are worse than a
// loud error).
func TestMountNaming(t *testing.T) {
	d := makeData(500)
	dir := t.TempDir()
	c1, _ := lwcomp.Encode(d.date, lwcomp.WithBlockSize(testBlock))
	c2, _ := lwcomp.Encode(d.status, lwcomp.WithBlockSize(testBlock))
	f, err := os.Create(filepath.Join(dir, "bad.col.lwc"))
	if err != nil {
		t.Fatal(err)
	}
	if err := lwcomp.WriteColumns(f, []lwcomp.NamedColumn{{Name: "a", Col: c1}, {Name: "b", Col: c2}}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := New(Config{Dir: dir}); err == nil {
		t.Fatal("mount of a two-column <table>.<column>.lwc succeeded, want error")
	}
}

// TestMetricsEndpoint: counters move, per-table cache hit rates become
// visible on repeated queries, and the endpoints around them answer.
func TestMetricsEndpoint(t *testing.T) {
	d := makeData(3000)
	_, ts := newTestServer(t, Config{Dir: newTestDir(t, d)})

	// The same mid-range query twice: the second run's fetches hit the
	// shared cache.
	where := fmt.Sprintf("amount >= %d", d.amount[d.n/2]+1)
	for i := 0; i < 2; i++ {
		if code, _ := postQuery(t, ts, queryRequest{Table: "orders", Where: where, Op: "sum", Columns: []string{"amount"}}); code != 200 {
			t.Fatal("query failed")
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m metricsBody
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Queries.Total != 2 || m.LatencyUs.Count != 2 {
		t.Fatalf("total=%d latency count=%d, want 2/2", m.Queries.Total, m.LatencyUs.Count)
	}
	if m.LatencyUs.P99 < m.LatencyUs.P50 || m.LatencyUs.P50 == 0 {
		t.Fatalf("latency quantiles p50=%d p99=%d", m.LatencyUs.P50, m.LatencyUs.P99)
	}
	orders, ok := m.Tables["orders"]
	if !ok {
		t.Fatal("metrics lack table orders")
	}
	if orders.BlocksSkipped == 0 || orders.BlocksFetched == 0 {
		t.Fatalf("orders block counters: %+v (the mid-range scan must both skip and fetch)", orders)
	}
	if orders.Cache.Hits == 0 || orders.Cache.HitRate <= 0 {
		t.Fatalf("orders cache stats: %+v (the repeated query must hit)", orders.Cache)
	}
	if m.Cache.BytesBudget != DefaultCacheBytes {
		t.Fatalf("pooled budget = %d, want %d", m.Cache.BytesBudget, DefaultCacheBytes)
	}

	// healthz and the reload endpoint answer too.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil || hr.StatusCode != 200 {
		t.Fatalf("healthz: %v %d", err, hr.StatusCode)
	}
	hr.Body.Close()
	rr, err := http.Post(ts.URL+"/-/reload", "application/json", nil)
	if err != nil || rr.StatusCode != 200 {
		t.Fatalf("reload endpoint: %v %d", err, rr.StatusCode)
	}
	rr.Body.Close()
}
