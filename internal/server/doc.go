// Package server is the lwcd columnar query daemon: it mounts a
// directory of container files as named tables and serves the Table
// scan API over HTTP to many concurrent clients.
//
// The subsystem is resource governance around the existing scan
// engine, not a new engine. Every mounted container joins one
// SharedBlockCache, so resident payload bytes stay under a single
// byte budget however many tables are open; an admission gate bounds
// in-flight queries and queue depth, answering 429 with Retry-After
// at saturation instead of collapsing; every query runs under a
// deadline-carrying context threaded into the scan loop, so an
// expired or disconnected request stops fetching blocks mid-scan;
// and row results stream as NDJSON batches, so a million-row
// materialize never buffers whole.
//
// Endpoints:
//
//	GET  /tables    the catalog, from index reads only (no payload decode)
//	POST /query     {table, where, columns, op, timeout_ms, batch_rows, limit}
//	GET  /metrics   expvar-style JSON: latency histogram, admission gauges,
//	                per-table cache hit rates and block skip/prove/fetch counters
//	POST /-/reload  re-mount the directory (SIGHUP does the same)
//	GET  /healthz   liveness
//
// Mounting groups files by name: `<table>.<column>.lwc` contributes
// one column (the file must hold exactly one; the filename wins over
// the container's internal name) and `<table>.lwc` contributes every
// column the container holds. All columns of one table must have
// equal row counts. Reloads swap the mounted set atomically; queries
// running against the old set finish on it, and its containers close
// when the last one drains.
package server
