package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"lwcomp"
	"lwcomp/internal/blocked"
)

// Handler returns the server's HTTP mux, wrapped in the panic
// recovery barrier.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /tables", s.handleTables)
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /-/reload", s.handleReload)
	mux.HandleFunc("POST /-/compact", s.handleCompact)
	mux.HandleFunc("POST /-/scrub", s.handleScrub)
	// /healthz is pure liveness: the process is up and serving HTTP.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"ok":true}` + "\n"))
	})
	// /readyz is readiness: 503 while closed, mid-reload, or draining a
	// retired mount set. A deploy should pull a draining server from
	// rotation, not restart it — which is why the two probes differ.
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if !s.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"ready":false}` + "\n"))
			return
		}
		w.Write([]byte(`{"ready":true}` + "\n"))
	})
	return s.recovered(mux)
}

// recovered is the handler-level crash barrier: a panic escaping a
// request handler becomes a 500 and a panics_recovered tick instead of
// a dead connection (net/http would recover it anyway, but silently
// and without a response). http.ErrAbortHandler re-panics — that is
// net/http's own abort protocol, not a crash.
func (s *Server) recovered(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if err, ok := rec.(error); ok && errors.Is(err, http.ErrAbortHandler) {
				panic(rec)
			}
			s.met.panics.Add(1)
			s.met.errors.Add(1)
			writeError(w, http.StatusInternalServerError, "internal error: %v", rec)
		}()
		next.ServeHTTP(w, r)
	})
}

// errorBody is every non-200's JSON shape. Offset and Token are set
// only for predicate parse failures, pointing at the offending byte.
type errorBody struct {
	// Error is the human-readable failure.
	Error string `json:"error"`
	// Offset is the byte offset of a predicate parse failure.
	Offset *int `json:"offset,omitempty"`
	// Token is the offending predicate token, when one was read.
	Token string `json:"token,omitempty"`
}

// writeError sends a JSON error with the given status.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeErrorBody(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// writeErrorBody sends a prebuilt error body.
func writeErrorBody(w http.ResponseWriter, status int, body errorBody) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

// catalogColumn is one column's /tables entry, read from the block
// index alone.
type catalogColumn struct {
	// Name is the served column name.
	Name string `json:"name"`
	// Blocks is the column's block count.
	Blocks int `json:"blocks"`
	// Min and Max bound the column's values, when every block carries
	// stats (v3 containers always do).
	Min *int64 `json:"min,omitempty"`
	// Max is the upper bound; see Min.
	Max *int64 `json:"max,omitempty"`
}

// catalogTable is one table's /tables entry.
type catalogTable struct {
	// Name is the table name (the filename prefix).
	Name string `json:"name"`
	// Rows is the table's row count.
	Rows int `json:"rows"`
	// Aligned reports whether the columns share block boundaries (the
	// precondition for cross-column per-block planning).
	Aligned bool `json:"aligned"`
	// Columns lists the table's columns in table order.
	Columns []catalogColumn `json:"columns"`
	// Files lists the container files behind the table.
	Files []string `json:"files"`
}

// handleTables serves the catalog. Everything here comes from the
// open containers' resident block indexes — no payload is fetched.
func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	ms := s.acquireMounts()
	defer ms.release()
	out := struct {
		Tables []catalogTable `json:"tables"`
	}{Tables: []catalogTable{}}
	for _, name := range ms.names {
		mt := ms.tables[name]
		ct := catalogTable{
			Name:    name,
			Rows:    mt.tbl.NumRows(),
			Aligned: mt.tbl.Aligned(),
			Files:   mt.files,
		}
		for _, colName := range mt.tbl.ColumnNames() {
			col, err := mt.tbl.Column(colName)
			if err != nil {
				continue
			}
			cc := catalogColumn{Name: colName, Blocks: col.NumBlocks()}
			if lo, hi, ok := indexMinMax(col); ok {
				cc.Min, cc.Max = &lo, &hi
			}
			ct.Columns = append(ct.Columns, cc)
		}
		out.Tables = append(out.Tables, ct)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// indexMinMax computes a column's [min, max] from block stats alone;
// ok is false when any non-empty block lacks stats (decoding to find
// out would defeat the catalog's no-payload-reads guarantee).
func indexMinMax(col *lwcomp.Column) (lo, hi int64, ok bool) {
	have := false
	for i := range col.Blocks {
		b := &col.Blocks[i]
		if b.Count == 0 {
			continue
		}
		if !b.HasStats {
			return 0, 0, false
		}
		if !have || b.Min < lo {
			lo = b.Min
		}
		if !have || b.Max > hi {
			hi = b.Max
		}
		have = true
	}
	return lo, hi, have
}

// queryRequest is the POST /query body.
type queryRequest struct {
	// Table names the mounted table to scan.
	Table string `json:"table"`
	// Where is the predicate in the scan mini-language; empty matches
	// every row.
	Where string `json:"where"`
	// Columns names the columns to aggregate (op=sum) or project
	// (op=rows). Unused for count.
	Columns []string `json:"columns"`
	// Op is count, sum or rows; empty means count.
	Op string `json:"op"`
	// TimeoutMS shortens the server's per-query deadline; it can
	// never extend it.
	TimeoutMS int64 `json:"timeout_ms"`
	// BatchRows overrides the server's rows-per-frame for op=rows.
	BatchRows int `json:"batch_rows"`
	// Limit caps the rows streamed by op=rows; 0 means all.
	Limit int64 `json:"limit"`
	// AllowDegraded opts this query into degraded execution: blocks
	// quarantined by permanent integrity failures are skipped (their
	// rows treated as non-matching) and the omission reported exactly
	// in the response's degraded list, instead of failing the query.
	AllowDegraded bool `json:"allow_degraded"`
}

// queryResult is the single-object response of count and sum queries,
// and the header frame of a rows stream.
type queryResult struct {
	// Table and Op echo the request.
	Table string `json:"table"`
	// Op is the executed operation.
	Op string `json:"op"`
	// Where is the parsed predicate, rendered back (the canonical
	// form, not the request's spelling).
	Where string `json:"where"`
	// Matched is the number of rows the predicate selected.
	Matched int64 `json:"matched"`
	// Sums maps column name to sum over the matched rows (op=sum).
	Sums map[string]int64 `json:"sums,omitempty"`
	// Columns lists the projected columns, in frame order (op=rows).
	Columns []string `json:"columns,omitempty"`
	// ElapsedMS is the server-side query time (omitted on the rows
	// header frame, where the stream is still running).
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	// Degraded lists the blocks a degraded scan omitted — present only
	// when the request set allow_degraded and at least one block was
	// quarantined. Its presence means Matched and Sums undercount the
	// unreadable rows by exactly the listed row ranges.
	Degraded []lwcomp.SkippedBlock `json:"degraded,omitempty"`
}

// errStreamLimit aborts a rows stream cleanly once the limit is hit.
var errStreamLimit = errors.New("stream limit reached")

// handleQuery admits, parses, plans and runs one query, then streams
// or writes its result. Admission rejections answer 429 with
// Retry-After; deadline hits answer 504; predicate errors answer 400
// with the byte offset and offending token.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	var req queryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request body: %v", err)
		return
	}
	op := req.Op
	if op == "" {
		op = "count"
	}
	switch op {
	case "count", "sum", "rows":
	default:
		writeError(w, http.StatusBadRequest, "unknown op %q (want count, sum or rows)", op)
		return
	}
	if (op == "sum" || op == "rows") && len(req.Columns) == 0 {
		writeError(w, http.StatusBadRequest, "op %q needs at least one entry in columns", op)
		return
	}

	timeout := s.cfg.QueryTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Admission: bounded wait for a slot, O(1) rejection past the
	// queue bound. Retry-After names the configured deadline — the
	// time scale on which a slot is guaranteed to free up.
	if err := s.gate.acquire(ctx); err != nil {
		if errors.Is(err, errSaturated) {
			s.met.rejected.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.QueryTimeout)))
			writeError(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		s.met.timeouts.Add(1)
		writeError(w, http.StatusGatewayTimeout, "request expired while queued for admission")
		return
	}
	defer s.gate.release()
	s.met.total.Add(1)
	defer func() { s.met.hist.record(time.Since(started)) }()

	ms := s.acquireMounts()
	defer ms.release()
	mt, ok := ms.tables[req.Table]
	if !ok {
		writeError(w, http.StatusNotFound, "no table %q mounted", req.Table)
		return
	}
	for _, colName := range req.Columns {
		if _, err := mt.tbl.Column(colName); err != nil {
			writeError(w, http.StatusBadRequest, "table %q has no column %q", req.Table, colName)
			return
		}
	}

	expr := lwcomp.And()
	if req.Where != "" {
		var err error
		expr, err = lwcomp.ParsePredicate(req.Where)
		if err != nil {
			var pe *lwcomp.ParseError
			if errors.As(err, &pe) {
				writeErrorBody(w, http.StatusBadRequest,
					errorBody{Error: pe.Error(), Offset: &pe.Offset, Token: pe.Token})
				return
			}
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}

	res := queryResult{Table: req.Table, Op: op, Where: expr.String()}
	switch op {
	case "count", "sum":
		// Count and sum run through the fused aggregate: one pass over
		// the compressed blocks, no materialized selection.
		var sumCols []string
		if op == "sum" {
			sumCols = req.Columns
		}
		agg, err := mt.tbl.Aggregate(ctx, expr, sumCols, lwcomp.ScanOptions{Degraded: req.AllowDegraded})
		if err != nil {
			s.queryError(w, err)
			return
		}
		res.Matched = agg.Matched
		if op == "sum" {
			res.Sums = make(map[string]int64, len(sumCols))
			for i, colName := range sumCols {
				res.Sums[colName] = agg.Sums[i]
			}
		}
		if m := agg.Manifest; m != nil && m.Len() > 0 {
			res.Degraded = m.Skipped()
		}
		res.ElapsedMS = msSince(started)
		writeJSON(w, res)
	case "rows":
		scan, err := mt.tbl.ScanWith(ctx, expr, lwcomp.ScanOptions{Degraded: req.AllowDegraded})
		if err != nil {
			s.queryError(w, err)
			return
		}
		defer scan.Release()
		res.Matched = int64(scan.Count())
		s.streamRows(ctx, w, scan, req, res, started)
	}
}

// degradedBlocks extracts a scan's degradation manifest for the JSON
// surface; nil (omitted from the response) for a clean or fail-fast
// scan.
func degradedBlocks(scan *lwcomp.Scan) []lwcomp.SkippedBlock {
	if m := scan.Manifest(); m != nil && m.Len() > 0 {
		return m.Skipped()
	}
	return nil
}

// retryAfterSeconds rounds the query deadline up to whole seconds and
// adds random jitter of up to a quarter of it — the Retry-After a
// saturated server advertises. The jitter spreads the retry herd: a
// burst of 429s that all named the same second would come back as the
// same burst, re-saturating the gate on schedule.
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if spread := secs / 4; spread > 0 {
		secs += rand.Intn(spread + 1)
	}
	return secs
}

// msSince is elapsed wall time in (fractional) milliseconds.
func msSince(t time.Time) float64 { return float64(time.Since(t).Nanoseconds()) / 1e6 }

// writeJSON sends one JSON object.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// streamRows streams an op=rows result as NDJSON: a header frame with
// the match count and column order, then row frames of at most
// batch_rows rows each, then a final frame. Frames are flushed as
// written, and each holds one batch — the server never materializes
// the full result, whatever its size.
func (s *Server) streamRows(ctx context.Context, w http.ResponseWriter, scan *lwcomp.Scan, req queryRequest, header queryResult, started time.Time) {
	batch := req.BatchRows
	if batch <= 0 {
		batch = s.cfg.BatchRows
	}
	header.Columns = req.Columns
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	enc.Encode(header)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}

	var streamed int64
	buf := make([]byte, 0, 1<<14)
	err := scan.StreamBatches(ctx, req.Columns, batch, func(rows []int64, vals [][]int64) error {
		if req.Limit > 0 && streamed+int64(len(rows)) > req.Limit {
			keep := req.Limit - streamed
			rows = rows[:keep]
			for i := range vals {
				vals[i] = vals[i][:keep]
			}
		}
		if len(rows) == 0 {
			return errStreamLimit
		}
		buf = appendRowsFrame(buf[:0], rows, vals)
		if _, err := w.Write(buf); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		streamed += int64(len(rows))
		if req.Limit > 0 && streamed >= req.Limit {
			return errStreamLimit
		}
		return nil
	})
	if err != nil && !errors.Is(err, errStreamLimit) {
		// The 200 and header frame are gone; the error becomes the
		// stream's terminal frame — with an explicit "done": false — so
		// clients can tell truncation from success and from a stream
		// cut mid-frame. Deadline hits still count as timeouts.
		if errors.Is(err, context.DeadlineExceeded) {
			s.met.timeouts.Add(1)
		} else if !errors.Is(err, context.Canceled) {
			s.met.errors.Add(1)
		}
		enc.Encode(struct {
			// Error is the failure that truncated the stream.
			Error string `json:"error"`
			// Done is false: frames before this one are valid, but the
			// stream is incomplete.
			Done bool `json:"done"`
		}{err.Error(), false})
		return
	}
	enc.Encode(struct {
		// Done marks a complete stream.
		Done bool `json:"done"`
		// Streamed is the number of rows emitted (≤ matched under a
		// limit).
		Streamed int64 `json:"streamed"`
		// ElapsedMS is the server-side query time.
		ElapsedMS float64 `json:"elapsed_ms"`
		// Degraded lists the blocks a degraded scan omitted; see
		// queryResult.Degraded.
		Degraded []lwcomp.SkippedBlock `json:"degraded,omitempty"`
	}{true, streamed, msSince(started), degradedBlocks(scan)})
}

// appendRowsFrame renders one NDJSON row frame:
// {"rows":[...],"cols":[[...],...]}\n — hand-built, because a server
// streaming millions of rows through reflect-driven json.Marshal
// would spend more time encoding than scanning.
func appendRowsFrame(buf []byte, rows []int64, vals [][]int64) []byte {
	buf = append(buf, `{"rows":`...)
	buf = appendInt64s(buf, rows)
	buf = append(buf, `,"cols":[`...)
	for i, col := range vals {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendInt64s(buf, col)
	}
	buf = append(buf, "]}\n"...)
	return buf
}

// appendInt64s renders a JSON array of integers.
func appendInt64s(buf []byte, vs []int64) []byte {
	buf = append(buf, '[')
	for i, v := range vs {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, v, 10)
	}
	return append(buf, ']')
}

// queryError maps a scan failure onto a status: deadline → 504,
// client-cancel → a quiet 499-style abort, anything else → 500.
func (s *Server) queryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.met.timeouts.Add(1)
		writeError(w, http.StatusGatewayTimeout, "query deadline exceeded")
	case errors.Is(err, context.Canceled):
		// The client is gone; nothing useful to write.
	default:
		s.met.errors.Add(1)
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// metricsCache is the cache section of /metrics.
type metricsCache struct {
	// Hits, Misses, Evictions, BytesUsed and BytesBudget mirror
	// lwcomp.CacheStats.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	BytesUsed int64 `json:"bytes_used"`
	// BytesBudget is the configured capacity.
	BytesBudget int64 `json:"bytes_budget"`
	// HitRate is hits / (hits + misses), 0 with no traffic.
	HitRate float64 `json:"hit_rate"`
}

// toMetricsCache converts CacheStats for the JSON surface.
func toMetricsCache(st lwcomp.CacheStats) metricsCache {
	mc := metricsCache{
		Hits: st.Hits, Misses: st.Misses, Evictions: st.Evictions,
		BytesUsed: st.BytesUsed, BytesBudget: st.BytesBudget,
	}
	if total := st.Hits + st.Misses; total > 0 {
		mc.HitRate = float64(st.Hits) / float64(total)
	}
	return mc
}

// metricsTable is one table's /metrics section.
type metricsTable struct {
	// Rows is the table's row count.
	Rows int `json:"rows"`
	// Cache is the table's own block-cache traffic under the shared
	// budget.
	Cache metricsCache `json:"cache"`
	// BlocksSkipped, BlocksProved and BlocksFetched are the
	// cumulative scan-plan outcomes (see blocked.ScanCounters).
	BlocksSkipped int64 `json:"blocks_skipped"`
	// BlocksProved counts stats-proved blocks (whole runs, no fetch).
	BlocksProved int64 `json:"blocks_proved"`
	// BlocksFetched counts undecided blocks whose payloads were read.
	BlocksFetched int64 `json:"blocks_fetched"`
	// BlocksQuarantined is the number of blocks currently quarantined
	// across the table's columns (permanent integrity failures pinned
	// at first detection).
	BlocksQuarantined int `json:"blocks_quarantined"`
	// ReadRetries counts transiently failed reads absorbed by the
	// retry policy across the table's containers.
	ReadRetries int64 `json:"read_retries"`
	// ReadGiveups counts reads that still failed after the retry
	// budget ran out.
	ReadGiveups int64 `json:"read_giveups"`
}

// metricsBody is the /metrics JSON shape (expvar-style: one flat
// document, no exposition format).
type metricsBody struct {
	// UptimeS is seconds since the server started.
	UptimeS float64 `json:"uptime_s"`
	// Queries groups the admission and outcome counters.
	Queries struct {
		// Total counts admitted queries.
		Total int64 `json:"total"`
		// InFlight and Queued are the admission gauges.
		InFlight int `json:"in_flight"`
		// Queued is the number of queries waiting for a slot.
		Queued int64 `json:"queued"`
		// Rejected counts 429s; Timeouts 504s; Errors 500s.
		Rejected int64 `json:"rejected"`
		// Timeouts counts queries that hit their deadline.
		Timeouts int64 `json:"timeouts"`
		// Errors counts queries that failed any other way.
		Errors int64 `json:"errors"`
	} `json:"queries"`
	// LatencyUs summarizes the query latency histogram in
	// microseconds.
	LatencyUs struct {
		// Count is the number of recorded queries.
		Count int64 `json:"count"`
		// MeanUs is the mean latency.
		MeanUs float64 `json:"mean"`
		// P50, P90 and P99 are bucket upper bounds (log2 buckets).
		P50 int64 `json:"p50"`
		// P90 is the 90th percentile bound.
		P90 int64 `json:"p90"`
		// P99 is the 99th percentile bound.
		P99 int64 `json:"p99"`
	} `json:"latency_us"`
	// PanicsRecovered counts panics caught and converted to errors —
	// by the handler crash barrier and by the scan engine's worker
	// recovery — instead of killing the process.
	PanicsRecovered int64 `json:"panics_recovered"`
	// Cache is the shared cache's pooled counters.
	Cache metricsCache `json:"cache"`
	// Tables holds each mounted table's counters.
	Tables map[string]metricsTable `json:"tables"`
	// Compaction holds the background compactor's tallies; present
	// only when the daemon is enabled.
	Compaction *metricsCompaction `json:"compaction,omitempty"`
	// Scrub holds the background scrubber's tallies.
	Scrub *metricsScrub `json:"scrub,omitempty"`
}

// metricsCompaction is the compaction section of /metrics.
type metricsCompaction struct {
	// ContainersScanned, Rewritten, Skipped, Failed and Merged are the
	// compactor's lifetime per-container outcome counters.
	ContainersScanned int64 `json:"containers_scanned"`
	// ContainersRewritten counts atomic rewrites that took effect.
	ContainersRewritten int64 `json:"containers_rewritten"`
	// ContainersSkipped counts containers under the rewrite threshold.
	ContainersSkipped int64 `json:"containers_skipped"`
	// ContainersFailed counts containers kept on their old generation
	// after an integrity failure.
	ContainersFailed int64 `json:"containers_failed"`
	// ContainersMerged counts merged containers written.
	ContainersMerged int64 `json:"containers_merged"`
	// BytesReclaimed is the cumulative on-disk byte win.
	BytesReclaimed int64 `json:"bytes_reclaimed"`
	// CPUSeconds is the wall time the compactor spent working.
	CPUSeconds float64 `json:"cpu_seconds"`
	// Sweeps counts sweeps started; SweepsAborted the ones cut short
	// by shutdown.
	Sweeps int64 `json:"sweeps"`
	// SweepsAborted counts sweeps that stopped before finishing.
	SweepsAborted int64 `json:"sweeps_aborted"`
	// Generation is the compactor's latest generation stamp.
	Generation uint64 `json:"generation"`
}

// metricsScrub is the scrub section of /metrics.
type metricsScrub struct {
	// ContainersScanned and BlocksScanned are the scrubber's lifetime
	// verification tallies.
	ContainersScanned int64 `json:"containers_scanned"`
	// BlocksScanned counts blocks verified (tombstones included).
	BlocksScanned int64 `json:"blocks_scanned"`
	// ErrorsFound counts integrity findings across all sweeps.
	ErrorsFound int64 `json:"errors_found"`
	// TombstonesSeen counts persisted tombstones encountered.
	TombstonesSeen int64 `json:"tombstones_seen"`
	// BytesScanned counts bytes pulled through the throttle.
	BytesScanned int64 `json:"bytes_scanned"`
	// RateBytesPerSec is the configured read-bandwidth cap (0 when
	// unthrottled).
	RateBytesPerSec int64 `json:"rate_bytes_per_sec"`
	// LastSweepAgeS is seconds since the last full sweep finished, or
	// -1 before the first completes.
	LastSweepAgeS float64 `json:"last_sweep_age_s"`
	// Quarantined counts blocks scrub sweeps quarantined on mounted
	// columns.
	Quarantined int64 `json:"quarantined"`
	// Healed counts containers salvage-repaired and swapped in.
	Healed int64 `json:"healed"`
	// Unrepairable counts containers repair had to leave untouched.
	Unrepairable int64 `json:"unrepairable"`
	// Sweeps counts sweeps started; SweepsAborted the ones cut short
	// by shutdown.
	Sweeps int64 `json:"sweeps"`
	// SweepsAborted counts sweeps that stopped before finishing.
	SweepsAborted int64 `json:"sweeps_aborted"`
}

// handleMetrics serves the counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ms := s.acquireMounts()
	defer ms.release()
	var body metricsBody
	body.UptimeS = time.Since(s.start).Seconds()
	body.Queries.Total = s.met.total.Load()
	body.Queries.InFlight = s.gate.inFlight()
	body.Queries.Queued = s.gate.waiting()
	body.Queries.Rejected = s.met.rejected.Load()
	body.Queries.Timeouts = s.met.timeouts.Load()
	body.Queries.Errors = s.met.errors.Load()
	snap := s.met.hist.snapshot()
	body.LatencyUs.Count = snap.count
	body.LatencyUs.MeanUs = snap.meanUs()
	body.LatencyUs.P50 = snap.quantile(0.50)
	body.LatencyUs.P90 = snap.quantile(0.90)
	body.LatencyUs.P99 = snap.quantile(0.99)
	body.PanicsRecovered = s.met.panics.Load() + blocked.RecoveredPanics()
	body.Cache = toMetricsCache(s.cache.Stats())
	body.Tables = make(map[string]metricsTable, len(ms.tables))
	for name, mt := range ms.tables {
		sc := mt.tbl.ScanCounters()
		quar := 0
		for _, colName := range mt.tbl.ColumnNames() {
			if col, err := mt.tbl.Column(colName); err == nil {
				quar += col.QuarantineCount()
			}
		}
		var rst lwcomp.ReadStats
		for _, cf := range mt.containers {
			st := cf.ReadStats()
			rst.Retries += st.Retries
			rst.Giveups += st.Giveups
		}
		body.Tables[name] = metricsTable{
			Rows:              mt.tbl.NumRows(),
			Cache:             toMetricsCache(mt.cacheStats()),
			BlocksSkipped:     sc.Skipped,
			BlocksProved:      sc.Proved,
			BlocksFetched:     sc.Fetched,
			BlocksQuarantined: quar,
			ReadRetries:       rst.Retries,
			ReadGiveups:       rst.Giveups,
		}
	}
	if s.compactor != nil {
		ctr := s.compactor.Counters()
		body.Compaction = &metricsCompaction{
			ContainersScanned:   ctr.Scanned,
			ContainersRewritten: ctr.Rewritten,
			ContainersSkipped:   ctr.Skipped,
			ContainersFailed:    ctr.Failed,
			ContainersMerged:    ctr.Merged,
			BytesReclaimed:      ctr.BytesReclaimed,
			CPUSeconds:          ctr.CPUSeconds,
			Sweeps:              s.sweeps.Load(),
			SweepsAborted:       s.sweepsAborted.Load(),
			Generation:          s.compactor.Generation(),
		}
	}
	sctr := s.scrubber.Counters()
	age := -1.0
	if sctr.LastSweepUnix > 0 {
		age = time.Since(time.Unix(sctr.LastSweepUnix, 0)).Seconds()
	}
	rate := s.cfg.ScrubRateBytes
	if rate < 0 {
		rate = 0
	}
	body.Scrub = &metricsScrub{
		ContainersScanned: sctr.ContainersScanned,
		BlocksScanned:     sctr.BlocksScanned,
		ErrorsFound:       sctr.ErrorsFound,
		TombstonesSeen:    sctr.TombstonesSeen,
		BytesScanned:      sctr.BytesScanned,
		RateBytesPerSec:   rate,
		LastSweepAgeS:     age,
		Quarantined:       s.scrubQuarantined.Load(),
		Healed:            s.scrubHealed.Load(),
		Unrepairable:      s.scrubUnrepairable.Load(),
		Sweeps:            s.scrubSweeps.Load(),
		SweepsAborted:     s.scrubAborted.Load(),
	}
	writeJSON(w, body)
}

// handleCompact runs one synchronous compaction sweep — the HTTP
// trigger tests and benchmarks use for deterministic sweeps instead
// of waiting out the interval. 404 unless the daemon is configured;
// an empty result when a background sweep is already running.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if s.compactor == nil {
		writeError(w, http.StatusNotFound, "compaction daemon not enabled (start with -compact)")
		return
	}
	writeJSON(w, s.compactSweep())
}

// handleScrub runs one synchronous scrub sweep — the HTTP trigger
// tests and operators use for deterministic sweeps instead of waiting
// out the interval. It works whether or not the background daemon is
// enabled. ?heal=1 forces salvage repair of damaged containers this
// sweep, ?heal=0 forces detection only; absent, the configured
// ScrubHeal applies. An empty result means a background sweep was
// already running.
func (s *Server) handleScrub(w http.ResponseWriter, r *http.Request) {
	heal := s.cfg.ScrubHeal
	switch r.URL.Query().Get("heal") {
	case "1", "true":
		heal = true
	case "0", "false":
		heal = false
	}
	writeJSON(w, s.scrubSweep(heal))
}

// handleReload re-mounts the directory — the HTTP twin of SIGHUP.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if err := s.Reload(); err != nil {
		writeError(w, http.StatusInternalServerError, "reload failed (previous set still serving): %v", err)
		return
	}
	writeJSON(w, struct {
		// Reloaded confirms the swap.
		Reloaded bool `json:"reloaded"`
		// Tables is the new table count.
		Tables int `json:"tables"`
	}{true, len(s.Tables())})
}
