package server

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the latency histogram's bucket count: bucket i holds
// queries whose latency in microseconds is in [2^i, 2^(i+1)), which
// spans 1µs to ~35min — beyond any survivable query deadline.
const histBuckets = 32

// latencyHist is a lock-free log2 latency histogram. Recording is two
// atomic adds on the hot path; quantiles are computed on snapshot by
// walking the cumulative counts, so p50/p99 cost nothing until
// someone scrapes /metrics.
type latencyHist struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
}

// record adds one observation.
func (h *latencyHist) record(d time.Duration) {
	us := d.Microseconds()
	b := bits.Len64(uint64(us)) // 0µs → bucket 0, 2^i..2^(i+1)-1 µs → bucket i+1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sumNs.Add(d.Nanoseconds())
}

// histSnapshot is one consistent-enough read of the histogram (each
// counter is read atomically; the aggregate may straddle concurrent
// records, which a monitoring read tolerates).
type histSnapshot struct {
	counts [histBuckets]int64
	count  int64
	sumNs  int64
}

// snapshot reads every counter.
func (h *latencyHist) snapshot() histSnapshot {
	var s histSnapshot
	for i := range h.buckets {
		s.counts[i] = h.buckets[i].Load()
	}
	s.count = h.count.Load()
	s.sumNs = h.sumNs.Load()
	return s
}

// quantile returns the q-quantile's bucket upper bound in
// microseconds (a log2 histogram answers within 2x), or 0 with no
// observations.
func (s *histSnapshot) quantile(q float64) int64 {
	if s.count == 0 {
		return 0
	}
	target := int64(q * float64(s.count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range s.counts {
		cum += c
		if cum >= target {
			if i == 0 {
				return 1
			}
			return int64(1) << uint(i) // upper bound of [2^(i-1), 2^i)
		}
	}
	return int64(1) << (histBuckets - 1)
}

// meanUs is the mean latency in microseconds.
func (s *histSnapshot) meanUs() float64 {
	if s.count == 0 {
		return 0
	}
	return float64(s.sumNs) / float64(s.count) / 1e3
}

// metrics is the server's counter set: query outcomes and the latency
// histogram. Gauges (in-flight, queued) live on the gate; per-table
// counters live on the mounted tables.
type metrics struct {
	total    atomic.Int64 // queries admitted and run
	rejected atomic.Int64 // 429s at the admission gate
	timeouts atomic.Int64 // queries that hit their deadline (504)
	errors   atomic.Int64 // queries that failed any other way
	panics   atomic.Int64 // panics the handler crash barrier recovered
	hist     latencyHist
}

// newMetrics returns an empty counter set.
func newMetrics() *metrics { return &metrics{} }
