package server

import (
	"crypto/sha256"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"lwcomp"
	"lwcomp/internal/storage"
)

// postScrub triggers one synchronous scrub sweep and decodes its
// summary. query is "" or "?heal=1"-style overrides.
func postScrub(t *testing.T, ts *httptest.Server, query string) scrubResult {
	t.Helper()
	resp, err := http.Post(ts.URL+"/-/scrub"+query, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /-/scrub%s: %d %s", query, resp.StatusCode, body)
	}
	var res scrubResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return res
}

// swapLyingAmount atomically replaces orders.amount.lwc with a
// generation whose block stats lie (self-consistent CRCs, wrong Min) —
// the corruption class only a scrub's stats re-derivation catches. The
// mounted descriptor keeps the old inode, so in-flight readers are
// untouched until a reload.
func swapLyingAmount(t *testing.T, dir string, amount []int64) {
	t.Helper()
	col, err := lwcomp.Encode(amount, lwcomp.WithBlockSize(testBlock))
	if err != nil {
		t.Fatal(err)
	}
	col.Blocks[2].Min -= 7
	err = storage.AtomicWriteFile(filepath.Join(dir, "orders.amount.lwc"), func(w io.Writer) error {
		return lwcomp.WriteColumns(w, []lwcomp.NamedColumn{{Name: "payload", Col: col}})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func sumOf(vals []int64) int64 {
	var s int64
	for _, v := range vals {
		s += v
	}
	return s
}

// TestScrubSweepQuarantinesThenHeals drives the full self-healing
// loop by hand: a scrub-only sweep detects the rotten generation and
// quarantines the block, a healing sweep salvages the container back
// to the truthful writer's exact bytes, reloads, and clears the
// ledger.
func TestScrubSweepQuarantinesThenHeals(t *testing.T) {
	d := makeData(2048)
	dir := newTestDir(t, d)
	amountPath := filepath.Join(dir, "orders.amount.lwc")
	good, err := os.ReadFile(amountPath)
	if err != nil {
		t.Fatal(err)
	}
	goodSum := sha256.Sum256(good)
	wantSum := sumOf(d.amount)

	_, ts := newTestServer(t, Config{Dir: dir, CacheBytes: -1})
	swapLyingAmount(t, dir, d.amount)

	// Phase 1: detect and quarantine, no healing.
	res := postScrub(t, ts, "?heal=0")
	if res.Errors < 1 || res.Quarantined < 1 || res.Healed != 0 || res.Reloaded {
		t.Fatalf("detection sweep: %+v", res)
	}
	// Other columns are untouched; the quarantined one refuses exact
	// scans and serves degraded ones with the omission reported.
	if status, out := postQuery(t, ts, queryRequest{Table: "orders", Op: "sum", Columns: []string{"status"}}); status != http.StatusOK {
		t.Fatalf("unrelated column after quarantine: %d %v", status, out)
	}
	if status, _ := postQuery(t, ts, queryRequest{Table: "orders", Op: "sum", Columns: []string{"amount"}}); status != http.StatusInternalServerError {
		t.Fatalf("exact scan of quarantined column: %d, want 500", status)
	}
	if status, _ := postQuery(t, ts, queryRequest{Table: "orders", Op: "sum", Columns: []string{"amount"}, AllowDegraded: true}); status != http.StatusOK {
		t.Fatalf("degraded scan of quarantined column: %d", status)
	}

	// Phase 2: heal. The salvage preserves every payload byte-for-byte
	// and re-derives the lied-about stats, so the healed file is
	// byte-identical to the pre-corruption original.
	res = postScrub(t, ts, "?heal=1")
	if res.Healed != 1 || !res.Reloaded || res.QuarantineCleared < 1 || res.Unrepairable != 0 {
		t.Fatalf("healing sweep: %+v", res)
	}
	healed, err := os.ReadFile(amountPath)
	if err != nil {
		t.Fatal(err)
	}
	if sha256.Sum256(healed) != goodSum {
		t.Fatal("healed file differs from the pre-corruption original")
	}
	status, out := postQuery(t, ts, queryRequest{Table: "orders", Op: "sum", Columns: []string{"amount"}})
	if status != http.StatusOK {
		t.Fatalf("exact scan after heal: %d %v", status, out)
	}
	if got := int64(out["sums"].(map[string]any)["amount"].(float64)); got != wantSum {
		t.Fatalf("sum after heal = %d, want %d", got, wantSum)
	}

	// The metrics section reflects the sweeps.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Scrub *metricsScrub `json:"scrub"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Scrub == nil {
		t.Fatal("/metrics has no scrub section")
	}
	if m.Scrub.Sweeps < 2 || m.Scrub.ErrorsFound < 1 || m.Scrub.Healed != 1 ||
		m.Scrub.Quarantined < 1 || m.Scrub.BlocksScanned == 0 || m.Scrub.BytesScanned == 0 {
		t.Fatalf("scrub metrics: %+v", *m.Scrub)
	}
	if m.Scrub.LastSweepAgeS < 0 {
		t.Fatalf("last sweep age %v after two sweeps", m.Scrub.LastSweepAgeS)
	}
}

// TestScrubDaemonTicker proves the background loop self-heals with no
// operator in the loop: corrupt generation on disk, wait, and the
// healed bytes come back.
func TestScrubDaemonTicker(t *testing.T) {
	d := makeData(1024)
	dir := newTestDir(t, d)
	amountPath := filepath.Join(dir, "orders.amount.lwc")
	good, err := os.ReadFile(amountPath)
	if err != nil {
		t.Fatal(err)
	}
	goodSum := sha256.Sum256(good)

	_, ts := newTestServer(t, Config{
		Dir:            dir,
		CacheBytes:     -1,
		Scrub:          true,
		ScrubInterval:  20 * time.Millisecond,
		ScrubHeal:      true,
		ScrubRateBytes: -1, // unthrottled: the test waits on wall time
	})
	swapLyingAmount(t, dir, d.amount)

	deadline := time.Now().Add(10 * time.Second)
	for {
		cur, err := os.ReadFile(amountPath)
		if err == nil && sha256.Sum256(cur) == goodSum {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon did not heal the container within the deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The healed generation serves.
	if status, out := postQuery(t, ts, queryRequest{Table: "orders", Op: "sum", Columns: []string{"amount"}}); status != http.StatusOK {
		t.Fatalf("query after autonomous heal: %d %v", status, out)
	}
}

// TestStartupJanitorRemovesOrphans: temp litter from a crashed writer
// is swept before the first mount.
func TestStartupJanitorRemovesOrphans(t *testing.T) {
	d := makeData(512)
	dir := newTestDir(t, d)
	orphan := filepath.Join(dir, ".orders.amount.lwc.tmp-31337")
	if err := os.WriteFile(orphan, []byte("torn"), 0o600); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Dir: dir, CacheBytes: -1})
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphaned temp file survived startup: %v", err)
	}
	if status, _ := postQuery(t, ts, queryRequest{Table: "orders"}); status != http.StatusOK {
		t.Fatalf("mount after janitor: %d", status)
	}
}

// TestRetryAfterJitter: the advertised Retry-After stays within
// [ceil, ceil+ceil/4] and actually spreads, so a herd of 429'd clients
// does not come back in lockstep.
func TestRetryAfterJitter(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 256; i++ {
		got := retryAfterSeconds(8 * time.Second)
		if got < 8 || got > 10 {
			t.Fatalf("retryAfterSeconds(8s) = %d, want [8, 10]", got)
		}
		seen[got] = true
	}
	if len(seen) < 2 {
		t.Fatalf("no spread over 256 draws: %v", seen)
	}
	// Sub-second deadlines still advertise a full second, unjittered.
	for i := 0; i < 16; i++ {
		if got := retryAfterSeconds(500 * time.Millisecond); got != 1 {
			t.Fatalf("retryAfterSeconds(500ms) = %d, want 1", got)
		}
	}
}
