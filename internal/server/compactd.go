package server

import (
	"log"
	"time"

	"lwcomp/internal/compact"
)

// This file hosts the background recompaction daemon inside the query
// server: the same compactor `lwc compact` runs single-shot, wrapped
// in a low-priority loop that yields to query traffic. Before every
// container the loop waits until the admission gate has spare
// capacity — no queued queries and at least one free slot — so
// compaction CPU never stands between a client and admission. After a
// sweep that changed the directory the server reloads, which swaps
// the mount set atomically: in-flight queries drain on the retired
// generation's descriptors while new queries open the compacted
// files.

// sweepResult summarizes one sweep for /-/compact and the logs.
type sweepResult struct {
	// Rewritten, Merged, Skipped and Failed count the sweep's
	// per-container outcomes.
	Rewritten int `json:"rewritten"`
	// Merged counts coalesced containers written.
	Merged int `json:"merged"`
	// Skipped counts containers under the rewrite threshold.
	Skipped int `json:"skipped"`
	// Failed counts containers kept on their old generation.
	Failed int `json:"failed"`
	// BytesReclaimed is the sweep's realized byte win.
	BytesReclaimed int64 `json:"bytes_reclaimed"`
	// Reloaded reports whether the sweep changed the directory and
	// re-mounted.
	Reloaded bool `json:"reloaded"`
	// Aborted reports a sweep cut short by server shutdown.
	Aborted bool `json:"aborted"`
}

// compactOptions maps the serving config onto the compactor's knobs.
func (c Config) compactOptions() compact.Options {
	return compact.Options{
		MinGainBytes:    c.CompactMinGainBytes,
		MinGainFraction: c.CompactMinGainFraction,
		TrialK:          c.CompactTrialK,
		Parallelism:     c.Parallelism,
		MergeSmall:      c.CompactMerge,
	}
}

// compactLoop is the daemon: one sweep per interval until Close.
func (s *Server) compactLoop() {
	defer close(s.compactDone)
	t := time.NewTicker(s.cfg.CompactInterval)
	defer t.Stop()
	for {
		select {
		case <-s.compactStop:
			return
		case <-t.C:
			res := s.compactSweep()
			if res.Rewritten > 0 || res.Merged > 0 {
				log.Printf("lwcd: compaction sweep: %d rewritten, %d merged, %d skipped, %d failed, %d bytes reclaimed",
					res.Rewritten, res.Merged, res.Skipped, res.Failed, res.BytesReclaimed)
			}
		}
	}
}

// idleYield blocks until the admission gate has spare capacity —
// nobody queued and at least one free query slot — so background work
// (compaction, scrubbing) only ever burns CPU the query path is not
// asking for. It returns false when stop closes (shutdown); a nil stop
// never fires, which is what an on-demand sweep without a daemon wants.
func (s *Server) idleYield(stop <-chan struct{}) bool {
	for {
		if s.gate.waiting() == 0 && s.gate.inFlight() < s.cfg.MaxConcurrent {
			return true
		}
		select {
		case <-stop:
			return false
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// compactYield is idleYield against the compaction daemon's stop
// channel.
func (s *Server) compactYield() bool { return s.idleYield(s.compactStop) }

// compactSweep runs one pass over the mounted directory. Only one
// sweep runs at a time; a tick that lands mid-sweep is dropped.
func (s *Server) compactSweep() sweepResult {
	var res sweepResult
	if !s.sweepMu.TryLock() {
		return res
	}
	defer s.sweepMu.Unlock()
	s.sweeps.Add(1)
	abort := func() sweepResult {
		res.Aborted = true
		s.sweepsAborted.Add(1)
		return res
	}

	if s.cfg.CompactMerge {
		if !s.compactYield() {
			return abort()
		}
		merged, err := s.compactor.MergeDir(s.cfg.Dir)
		if err != nil {
			log.Printf("lwcd: compaction merge pass: %v", err)
		}
		res.Merged += len(merged)
		for _, m := range merged {
			res.BytesReclaimed += m.Gain()
		}
	}

	paths, err := compact.ListContainers(s.cfg.Dir)
	if err != nil {
		log.Printf("lwcd: compaction sweep: %v", err)
		return res
	}
	for _, p := range paths {
		if !s.compactYield() {
			return abort()
		}
		r, err := s.compactor.CompactFile(p)
		if err != nil {
			// Environmental (a container deleted mid-sweep, a full
			// disk): log and move on — the next sweep retries.
			log.Printf("lwcd: compacting %s: %v", p, err)
			continue
		}
		switch r.Action {
		case compact.ActionRewritten:
			res.Rewritten++
			res.BytesReclaimed += r.Gain()
		case compact.ActionSkipped:
			res.Skipped++
		case compact.ActionFailed:
			res.Failed++
			log.Printf("lwcd: compacting %s: kept old generation: %v", p, r.Err)
		}
	}

	if res.Rewritten > 0 || res.Merged > 0 {
		// The generation swap for the serving path: retired mount sets
		// drain on their open descriptors, new queries open the
		// compacted files.
		if err := s.Reload(); err != nil {
			log.Printf("lwcd: reload after compaction failed (still serving the previous set): %v", err)
		} else {
			res.Reloaded = true
		}
	}
	return res
}
