package server

import (
	"context"
	"errors"
	"flag"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"lwcomp"
	"lwcomp/internal/compact"
	"lwcomp/internal/scrub"
	"lwcomp/internal/storage"
)

// Config is the server's resource-governance configuration. The zero
// value of every field means "use the default"; withDefaults fills
// them in.
type Config struct {
	// Dir is the directory of *.lwc containers to mount as tables.
	Dir string
	// CacheBytes is the one byte budget every mounted container's
	// block cache shares; 0 means DefaultCacheBytes, negative
	// disables caching.
	CacheBytes int64
	// MaxConcurrent bounds in-flight queries (the admission limit);
	// <= 0 means 2x GOMAXPROCS.
	MaxConcurrent int
	// MaxQueue bounds queries waiting for an admission slot beyond
	// MaxConcurrent; past it the server answers 429 with Retry-After.
	// 0 means 4x MaxConcurrent; negative means no queueing (reject
	// the moment every slot is busy).
	MaxQueue int
	// QueryTimeout is the per-query deadline; a request's timeout_ms
	// may shorten but never extend it. 0 means 30s.
	QueryTimeout time.Duration
	// Parallelism bounds each scan's concurrent block workers
	// (WithParallelism); 0 means GOMAXPROCS.
	Parallelism int
	// BatchRows is the default row count per streamed NDJSON frame;
	// 0 means 4096.
	BatchRows int
	// Mmap maps containers instead of issuing positioned reads.
	Mmap bool
	// ReadRetries bounds how many times a transiently failed container
	// read is re-issued (capped exponential backoff, 1ms doubling to
	// 50ms) before the error surfaces; 0 means 3, negative disables
	// retrying. Integrity failures are permanent and never retried.
	ReadRetries int
	// FaultInjection, when non-nil, wraps every mounted container's
	// reader — the hook fault-injection tests and lwcbench's EXP-T use
	// to exercise the retry and quarantine paths (see internal/faults).
	// Setting it disables mmap for the mounted containers.
	FaultInjection func(io.ReaderAt) io.ReaderAt
	// Compact enables the background recompaction daemon: periodic
	// low-priority sweeps that re-analyze each mounted container and
	// atomically rewrite the ones whose byte win clears the threshold
	// (see internal/compact). Sweeps yield to query traffic and never
	// take an admission slot.
	Compact bool
	// CompactInterval is the pause between background sweeps; 0 means
	// 1m. Ignored unless Compact is set.
	CompactInterval time.Duration
	// CompactMinGainBytes is the rewrite threshold in absolute bytes;
	// 0 means compact.DefaultMinGainBytes, negative means any positive
	// gain.
	CompactMinGainBytes int64
	// CompactMinGainFraction additionally requires the gain to clear
	// this fraction of the old container's size; 0 disables.
	CompactMinGainFraction float64
	// CompactTrialK prunes the compactor's per-block scheme search to
	// the top K candidates by estimated size; 0 means exhaustive.
	CompactTrialK int
	// CompactMerge also coalesces groups of small same-table
	// single-column containers into one container per table.
	CompactMerge bool
	// Scrub enables the background scrubber: periodic low-priority
	// sweeps that fsck-walk every mounted container from disk under a
	// byte-rate budget and quarantine rotten blocks on the mounted
	// columns before a query trips over them (see internal/scrub).
	// Sweeps yield to query traffic and never take an admission slot.
	Scrub bool
	// ScrubInterval is the pause between scrub sweeps; 0 means 5m.
	// Ignored unless Scrub is set.
	ScrubInterval time.Duration
	// ScrubRateBytes caps the scrubber's read bandwidth in bytes per
	// second; 0 means 8 MiB/s, negative means unthrottled.
	ScrubRateBytes int64
	// ScrubHeal additionally salvage-repairs each damaged container a
	// sweep finds — preserving good blocks byte-for-byte, tombstoning
	// truly lost ones — and reloads so the healed generation serves.
	ScrubHeal bool
}

// DefaultCacheBytes is the shared block-cache budget used when the
// config does not set one: generous enough to keep a working set of
// hot blocks resident across several mounted tables, bounded enough
// that a server over a multi-GB mount does not page.
const DefaultCacheBytes int64 = 256 << 20

// withDefaults fills zero config fields with serving defaults.
func (c Config) withDefaults() Config {
	if c.CacheBytes == 0 {
		c.CacheBytes = DefaultCacheBytes
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.BatchRows <= 0 {
		c.BatchRows = 4096
	}
	if c.ReadRetries == 0 {
		c.ReadRetries = 3
	}
	if c.Compact && c.CompactInterval <= 0 {
		c.CompactInterval = time.Minute
	}
	if c.Scrub && c.ScrubInterval <= 0 {
		c.ScrubInterval = 5 * time.Minute
	}
	if c.ScrubRateBytes == 0 {
		c.ScrubRateBytes = 8 << 20
	}
	return c
}

// retryPolicy maps the ReadRetries knob onto the storage layer's
// backoff policy.
func (c Config) retryPolicy() storage.RetryPolicy {
	if c.ReadRetries <= 0 {
		return storage.RetryPolicy{}
	}
	return storage.RetryPolicy{
		MaxRetries: c.ReadRetries,
		BaseDelay:  time.Millisecond,
		MaxDelay:   50 * time.Millisecond,
	}
}

// Server serves Table scans over a mounted directory of containers.
// Create one with New, expose Handler on an http.Server (or call
// ListenAndServe), and Close it when done.
type Server struct {
	cfg   Config
	cache *lwcomp.SharedBlockCache
	gate  *gate
	met   *metrics
	start time.Time

	mu     sync.RWMutex
	mounts *mountSet
	closed atomic.Bool

	// reloading and draining drive /readyz: a reload in progress, or a
	// retired mount set whose containers have not closed yet, means
	// "serving but not ready for more traffic".
	reloading atomic.Int64
	draining  atomic.Int64

	// The background recompaction daemon (nil/zero unless cfg.Compact):
	// compactor does the rewrites, sweepMu serializes sweeps, the
	// channels stop the loop, and the counters feed /metrics.
	compactor     *compact.Compactor
	compactStop   chan struct{}
	compactDone   chan struct{}
	sweepMu       sync.Mutex
	sweeps        atomic.Int64
	sweepsAborted atomic.Int64

	// The background scrubber (loop runs only with cfg.Scrub, but the
	// scrubber itself always exists so /-/scrub can trigger sweeps on
	// demand): counters feed the /metrics scrub section.
	scrubber          *scrub.Scrubber
	scrubStop         chan struct{}
	scrubDone         chan struct{}
	scrubSweeps       atomic.Int64
	scrubAborted      atomic.Int64
	scrubQuarantined  atomic.Int64
	scrubHealed       atomic.Int64
	scrubUnrepairable atomic.Int64
}

// New builds a server over cfg and performs the initial mount. An
// empty or all-skipped directory is not an error — the catalog is
// just empty until a reload finds containers.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		cache:    lwcomp.NewSharedBlockCache(cfg.CacheBytes),
		gate:     newGate(cfg.MaxConcurrent, cfg.MaxQueue),
		met:      newMetrics(),
		start:    time.Now(),
		scrubber: scrub.New(cfg.scrubOptions()),
	}
	// Startup janitor: a crash mid-write leaves orphaned
	// .<name>.tmp-* files; no writer can be mid-flight before the
	// first mount, so age 0 is safe.
	if removed, err := storage.SweepTempFiles(cfg.Dir, 0); err == nil && len(removed) > 0 {
		log.Printf("lwcd: removed %d orphaned temp file(s) left by an interrupted write", len(removed))
	}
	if err := s.Reload(); err != nil {
		return nil, err
	}
	if cfg.Compact {
		s.compactor = compact.New(cfg.compactOptions())
		s.compactStop = make(chan struct{})
		s.compactDone = make(chan struct{})
		go s.compactLoop()
	}
	if cfg.Scrub {
		s.scrubStop = make(chan struct{})
		s.scrubDone = make(chan struct{})
		go s.scrubLoop()
	}
	return s, nil
}

// Reload re-mounts the configured directory and atomically swaps the
// served table set. In-flight queries finish against the set they
// started on; the old set's containers close when its last query
// drains. On error the previous set keeps serving untouched.
func (s *Server) Reload() error {
	s.reloading.Add(1)
	defer s.reloading.Add(-1)
	// Reload-time janitor: only litter old enough that no live writer
	// (a compact or repair mid-swap) can still own it.
	storage.SweepTempFiles(s.cfg.Dir, time.Minute)
	ms, err := mountDir(s.cfg, s.cache)
	if err != nil {
		return err
	}
	s.mu.Lock()
	old := s.mounts
	s.mounts = ms
	s.mu.Unlock()
	if old != nil {
		s.draining.Add(1)
		old.retire(func() { s.draining.Add(-1) })
	}
	return nil
}

// Close retires the mounted set, closing its containers once the last
// in-flight query drains. The server rejects new queries afterwards.
func (s *Server) Close() error {
	if s.closed.CompareAndSwap(false, true) {
		// Stop the background daemons first and wait them out: a sweep
		// mid-rewrite finishes its atomic write, then sees the stop and
		// aborts before the next container.
		if s.compactStop != nil {
			close(s.compactStop)
			<-s.compactDone
		}
		if s.scrubStop != nil {
			close(s.scrubStop)
			<-s.scrubDone
		}
	}
	s.mu.Lock()
	old := s.mounts
	s.mounts = newMountSet(nil)
	s.mu.Unlock()
	if old != nil {
		old.retire(nil)
	}
	return nil
}

// Ready reports whether the server should pass readiness probes: not
// closed, no reload in progress, and no retired mount set still
// draining — /readyz reads through this.
func (s *Server) Ready() bool {
	return !s.closed.Load() && s.reloading.Load() == 0 && s.draining.Load() == 0
}

// Table returns the named table's scan handle from the current mount
// set — the hook fault-injection tests and lwcbench's EXP-T use to
// wrap a mounted column's block source. The handle is safe to use only
// while no reload retires the set it came from.
func (s *Server) Table(name string) (*lwcomp.Table, bool) {
	ms := s.acquireMounts()
	defer ms.release()
	mt, ok := ms.tables[name]
	if !ok {
		return nil, false
	}
	return mt.tbl, true
}

// Tables returns the currently mounted table names, sorted — the
// catalog handler and tests read through this.
func (s *Server) Tables() []string {
	ms := s.acquireMounts()
	defer ms.release()
	return append([]string(nil), ms.names...)
}

// CacheStats snapshots the shared block cache's pooled counters.
func (s *Server) CacheStats() lwcomp.CacheStats { return s.cache.Stats() }

// acquireMounts returns the current mounted set with a reference
// held; callers must release it when their query finishes so retired
// sets can close.
func (s *Server) acquireMounts() *mountSet {
	s.mu.RLock()
	ms := s.mounts
	ms.acquire()
	s.mu.RUnlock()
	return ms
}

// ListenAndServe serves on addr until ctx is cancelled, reloading the
// mount on SIGHUP. It prints one line when ready (the smoke tests and
// process supervisors key off it) and shuts down gracefully, letting
// in-flight queries finish.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("lwcd: serving %d table(s) from %s on http://%s", len(s.Tables()), s.cfg.Dir, ln.Addr())
	srv := &http.Server{Handler: s.Handler()}

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			select {
			case <-done:
				return
			case <-hup:
				if err := s.Reload(); err != nil {
					log.Printf("lwcd: reload failed (still serving the previous set): %v", err)
				} else {
					log.Printf("lwcd: reloaded, %d table(s)", len(s.Tables()))
				}
			}
		}
	}()
	go func() {
		select {
		case <-done:
		case <-ctx.Done():
			shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(shutCtx)
		}
	}()
	err = srv.Serve(ln)
	s.Close()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Main is the shared entry point of `lwcd` and `lwc serve`: parse
// flags, mount, serve until SIGINT/SIGTERM.
func Main(args []string) error {
	fs := flag.NewFlagSet("lwcd", flag.ContinueOnError)
	var cfg Config
	addr := fs.String("addr", "127.0.0.1:7207", "listen address")
	fs.StringVar(&cfg.Dir, "dir", ".", "directory of *.lwc containers to mount as tables")
	fs.Int64Var(&cfg.CacheBytes, "cache-bytes", 0, "shared block-cache byte budget across all tables (0 = 256 MiB, negative = uncached)")
	fs.IntVar(&cfg.MaxConcurrent, "max-concurrent", 0, "admission limit on in-flight queries (0 = 2x GOMAXPROCS)")
	fs.IntVar(&cfg.MaxQueue, "max-queue", 0, "queries queued beyond the admission limit before 429 (0 = 4x max-concurrent, negative = none)")
	fs.DurationVar(&cfg.QueryTimeout, "timeout", 0, "per-query deadline (0 = 30s)")
	fs.IntVar(&cfg.Parallelism, "parallel", 0, "concurrent block workers per scan (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.BatchRows, "batch-rows", 0, "rows per streamed NDJSON frame (0 = 4096)")
	fs.BoolVar(&cfg.Mmap, "mmap", false, "memory-map containers instead of reading them")
	fs.IntVar(&cfg.ReadRetries, "read-retries", 0, "retries per transiently failed container read (0 = 3, negative = none)")
	fs.BoolVar(&cfg.Compact, "compact", false, "run the background recompaction daemon over -dir")
	fs.DurationVar(&cfg.CompactInterval, "compact-interval", 0, "pause between background compaction sweeps (0 = 1m)")
	fs.Int64Var(&cfg.CompactMinGainBytes, "compact-min-gain", 0, "rewrite threshold in bytes (0 = 4096, negative = any gain)")
	fs.Float64Var(&cfg.CompactMinGainFraction, "compact-min-gain-frac", 0, "rewrite threshold as a fraction of the old container size (0 = off)")
	fs.IntVar(&cfg.CompactTrialK, "compact-trialk", 0, "prune the compactor's scheme search to the top K estimates (0 = exhaustive)")
	fs.BoolVar(&cfg.CompactMerge, "compact-merge", false, "also merge small same-table single-column containers")
	fs.BoolVar(&cfg.Scrub, "scrub", false, "run the background scrubber over the mounted containers")
	fs.DurationVar(&cfg.ScrubInterval, "scrub-interval", 0, "pause between background scrub sweeps (0 = 5m)")
	fs.Int64Var(&cfg.ScrubRateBytes, "scrub-rate", 0, "scrub read-bandwidth cap in bytes/s (0 = 8 MiB/s, negative = unthrottled)")
	fs.BoolVar(&cfg.ScrubHeal, "scrub-heal", false, "salvage-repair damaged containers found by scrub sweeps")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv, err := New(cfg)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return srv.ListenAndServe(ctx, *addr)
}

// errSaturated is the admission gate's rejection: every slot busy and
// the queue full. The handler maps it to 429 with Retry-After.
var errSaturated = errors.New("server saturated: every query slot busy and the queue full")

// gate is the admission controller: a semaphore of query slots plus a
// bounded count of waiters. It is what stands between heavy traffic
// and collapse — past the queue bound, queries are rejected in O(1)
// instead of piling onto the scan engine.
type gate struct {
	slots    chan struct{}
	maxQueue int
	queued   atomic.Int64
}

// newGate returns a gate admitting maxConcurrent queries with
// maxQueue waiters (negative: none).
func newGate(maxConcurrent, maxQueue int) *gate {
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &gate{slots: make(chan struct{}, maxConcurrent), maxQueue: maxQueue}
}

// acquire takes a query slot, waiting in the bounded queue when all
// are busy. It returns errSaturated past the queue bound and ctx.Err()
// if the request expires while queued.
func (g *gate) acquire(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	if g.queued.Add(1) > int64(g.maxQueue) {
		g.queued.Add(-1)
		return errSaturated
	}
	defer g.queued.Add(-1)
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a slot.
func (g *gate) release() { <-g.slots }

// inFlight is the admitted-query gauge.
func (g *gate) inFlight() int { return len(g.slots) }

// waiting is the queued-query gauge.
func (g *gate) waiting() int64 { return g.queued.Load() }
