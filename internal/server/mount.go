package server

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"lwcomp"
	"lwcomp/internal/storage"
)

// mountedTable is one served table: the scan handle, the containers
// behind it (for per-table cache stats), and the catalog facts the
// /tables handler reports without decoding anything.
type mountedTable struct {
	name       string
	tbl        *lwcomp.Table
	files      []string
	containers []*lwcomp.Container
}

// cacheStats sums the table's containers' cache counters — one
// container per column under the `<table>.<column>.lwc` convention,
// so the sum is the table's own traffic even under a shared budget.
func (mt *mountedTable) cacheStats() lwcomp.CacheStats {
	var total lwcomp.CacheStats
	for _, cf := range mt.containers {
		st := cf.CacheStats()
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.Evictions += st.Evictions
		// Bytes are pooled across the whole shared cache; report the
		// budget once rather than a meaningless per-table sum.
		total.BytesUsed = st.BytesUsed
		total.BytesBudget = st.BytesBudget
	}
	return total
}

// mountSet is one immutable generation of mounted tables plus the
// drain machinery a reload needs: queries hold a reference for their
// whole lifetime, and a retired set closes its containers when the
// last reference drops — never under a running scan.
type mountSet struct {
	tables map[string]*mountedTable
	names  []string

	mu        sync.Mutex
	refs      int
	retired   bool
	onDrained func()
}

// newMountSet wraps tables (which may be nil/empty) as a set.
func newMountSet(tables map[string]*mountedTable) *mountSet {
	ms := &mountSet{tables: tables}
	if ms.tables == nil {
		ms.tables = map[string]*mountedTable{}
	}
	for name := range ms.tables {
		ms.names = append(ms.names, name)
	}
	sort.Strings(ms.names)
	return ms
}

// acquire takes a reference for one query.
func (ms *mountSet) acquire() {
	ms.mu.Lock()
	ms.refs++
	ms.mu.Unlock()
}

// release drops a query's reference, closing the set's containers if
// it was retired and this was the last one.
func (ms *mountSet) release() {
	ms.mu.Lock()
	ms.refs--
	closeNow := ms.retired && ms.refs == 0
	ms.mu.Unlock()
	if closeNow {
		ms.closeTables()
	}
}

// retire marks the set replaced; it closes immediately when idle,
// otherwise when the last in-flight query releases. onDrained, when
// non-nil, runs once after the containers close — the server's
// readiness gauge hangs off it.
func (ms *mountSet) retire(onDrained func()) {
	ms.mu.Lock()
	ms.retired = true
	ms.onDrained = onDrained
	closeNow := ms.refs == 0
	ms.mu.Unlock()
	if closeNow {
		ms.closeTables()
	}
}

// closeTables closes every table (each closes its containers exactly
// once — the Table.Close contract), then fires the drain callback.
func (ms *mountSet) closeTables() {
	for _, mt := range ms.tables {
		mt.tbl.Close()
	}
	if ms.onDrained != nil {
		ms.onDrained()
	}
}

// mountFile is one *.lwc file assigned to a table: the path and the
// column name the filename dictates ("" when the container's own
// column names apply).
type mountFile struct {
	path   string
	column string
}

// mountDir opens every *.lwc container under cfg.Dir and groups them
// into tables: `<table>.<column>.lwc` contributes that one column,
// `<table>.lwc` contributes all of the container's columns. The whole
// mount fails on the first unopenable file or inconsistent table
// (mismatched row counts, duplicate columns), so a reload never
// half-serves a directory.
func mountDir(cfg Config, cache *lwcomp.SharedBlockCache) (*mountSet, error) {
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, err
	}
	groups := map[string][]mountFile{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".lwc") {
			continue
		}
		base := strings.TrimSuffix(e.Name(), ".lwc")
		tbl, col := base, ""
		if i := strings.LastIndexByte(base, '.'); i > 0 && i < len(base)-1 {
			tbl, col = base[:i], base[i+1:]
		}
		groups[tbl] = append(groups[tbl], mountFile{path: filepath.Join(cfg.Dir, e.Name()), column: col})
	}

	tables := map[string]*mountedTable{}
	fail := func(err error) (*mountSet, error) {
		for _, mt := range tables {
			mt.tbl.Close()
		}
		return nil, err
	}
	for name, files := range groups {
		sort.Slice(files, func(i, j int) bool { return files[i].path < files[j].path })
		mt, err := mountTable(cfg, cache, name, files)
		if err != nil {
			return fail(err)
		}
		tables[name] = mt
	}
	return newMountSet(tables), nil
}

// mountTable opens one table's files and builds its scan handle.
func mountTable(cfg Config, cache *lwcomp.SharedBlockCache, name string, files []mountFile) (*mountedTable, error) {
	mt := &mountedTable{name: name}
	var cols []lwcomp.NamedColumn
	var closers []io.Closer
	cleanup := func(err error) (*mountedTable, error) {
		for _, c := range closers {
			c.Close()
		}
		return nil, err
	}
	for _, f := range files {
		// Open through the storage layer directly: the retry policy and
		// the fault-injection reader hook are serving-infrastructure
		// knobs, not public API options.
		cf, err := storage.OpenContainerFile(f.path, storage.OpenOptions{
			CacheBytes: storage.DefaultBlockCacheBytes,
			Shared:     cache,
			Mmap:       cfg.Mmap,
			Retry:      cfg.retryPolicy(),
			WrapReader: cfg.FaultInjection,
		})
		if err != nil {
			return cleanup(fmt.Errorf("mount %s: %w", f.path, err))
		}
		if cfg.Parallelism > 0 {
			for _, c := range cf.Columns() {
				c.Col.Parallelism = cfg.Parallelism
			}
		}
		closers = append(closers, cf)
		mt.containers = append(mt.containers, cf)
		mt.files = append(mt.files, filepath.Base(f.path))
		if f.column == "" {
			cols = append(cols, cf.Columns()...)
			continue
		}
		if got := len(cf.Columns()); got != 1 {
			return cleanup(fmt.Errorf("mount %s: a <table>.<column>.lwc file must hold exactly one column, found %d", f.path, got))
		}
		// The filename is the column's served name; the container's
		// internal name is an encode-time artifact.
		cols = append(cols, lwcomp.NamedColumn{Name: f.column, Col: cf.Columns()[0].Col})
	}
	tbl, err := lwcomp.NewTableWithClosers(cols, closers...)
	if err != nil {
		return cleanup(fmt.Errorf("mount table %q: %w", name, err))
	}
	mt.tbl = tbl
	return mt, nil
}
