package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"lwcomp"
	"lwcomp/internal/faults"
	"lwcomp/internal/storage"
)

// getJSON fetches path and decodes the JSON body.
func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s (%d): %v", url, resp.StatusCode, err)
	}
	return resp.StatusCode, out
}

// corruptBlock flips a payload byte of the given block in a v3
// container file, so the block's CRC check fails on next read.
func corruptBlock(t *testing.T, path string, block int) {
	t.Helper()
	cf, err := storage.OpenContainerFile(path, storage.OpenOptions{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	ext := cf.Extents(0)[block]
	cf.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Absolute payload start = 14-byte prefix (magic, version, indexLen)
	// + the index; extents are relative to the payload region.
	indexLen := binary.LittleEndian.Uint64(data[6:14])
	off := 14 + int64(indexLen) + ext.Offset
	data[off] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestFaultPanicRecoveryKeepsServing injects a panic into the scan
// path of a mounted column: the query answers 500, panics_recovered
// ticks, and — the point — the daemon keeps answering queries.
func TestFaultPanicRecoveryKeepsServing(t *testing.T) {
	d := makeData(2000)
	srv, ts := newTestServer(t, Config{Dir: newTestDir(t, d)})

	tbl, ok := srv.Table("orders")
	if !ok {
		t.Fatal("orders not mounted")
	}
	col, err := tbl.Column("amount")
	if err != nil {
		t.Fatal(err)
	}
	panics := map[int]bool{}
	for i := 0; i < col.NumBlocks(); i++ {
		panics[i] = true
	}
	orig := col.Source
	col.Source = faults.NewBlockSource(orig, nil, panics)

	status, body := postQuery(t, ts, queryRequest{Table: "orders", Where: "amount = 500", Op: "count"})
	if status != http.StatusInternalServerError {
		t.Fatalf("query over panicking column: status %d, body %v", status, body)
	}

	col.Source = orig
	status, body = postQuery(t, ts, queryRequest{Table: "orders", Where: "amount = 500", Op: "count"})
	if status != http.StatusOK {
		t.Fatalf("query after restore: status %d, body %v", status, body)
	}
	if body["matched"].(float64) != 1 {
		t.Fatalf("matched = %v, want 1 (amount 500 is row 500)", body["matched"])
	}

	_, met := getJSON(t, ts.URL+"/metrics")
	if met["panics_recovered"].(float64) < 1 {
		t.Fatalf("panics_recovered = %v, want >= 1", met["panics_recovered"])
	}
}

// TestFaultHandlerPanicBarrier drives a panic through the HTTP layer
// itself (not a scan worker) and checks the 500 + recovery counter.
func TestFaultHandlerPanicBarrier(t *testing.T) {
	srv, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /boom", func(w http.ResponseWriter, r *http.Request) { panic("handler crash") })
	h := srv.recovered(mux)

	rec := newRecorder()
	h.ServeHTTP(rec, mustRequest(t, "GET", "/boom"))
	if rec.status != http.StatusInternalServerError {
		t.Fatalf("status = %d", rec.status)
	}
	if srv.met.panics.Load() != 1 {
		t.Fatalf("panics counter = %d", srv.met.panics.Load())
	}
	var body errorBody
	if err := json.Unmarshal(rec.body.Bytes(), &body); err != nil || body.Error == "" {
		t.Fatalf("500 body %q not an error JSON: %v", rec.body.String(), err)
	}
}

// minimal ResponseWriter capturing status and body.
type recorder struct {
	h      http.Header
	status int
	body   bytes.Buffer
}

func newRecorder() *recorder { return &recorder{h: http.Header{}, status: http.StatusOK} }

func (r *recorder) Header() http.Header         { return r.h }
func (r *recorder) WriteHeader(code int)        { r.status = code }
func (r *recorder) Write(p []byte) (int, error) { return r.body.Write(p) }

func mustRequest(t *testing.T, method, target string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(method, target, nil)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

// TestFaultDegradedQueryEndToEnd corrupts one block of one column on
// disk and walks the full contract: default queries fail fast with a
// 500, allow_degraded queries succeed with the exact omission in the
// response, /metrics gauges the quarantine, and the verifier flags
// the file.
func TestFaultDegradedQueryEndToEnd(t *testing.T) {
	d := makeData(2000)
	dir := newTestDir(t, d)
	amountPath := filepath.Join(dir, "orders.amount.lwc")
	corruptBlock(t, amountPath, 2)
	srv, ts := newTestServer(t, Config{Dir: dir})

	// Default mode: the corrupted block fails the query — a clean 500,
	// not a wrong answer, and the daemon stays up.
	status, body := postQuery(t, ts, queryRequest{Table: "orders", Op: "sum", Columns: []string{"amount"}})
	if status != http.StatusInternalServerError {
		t.Fatalf("default-mode sum over corrupted column: status %d, body %v", status, body)
	}

	// Degraded mode: 200, with the manifest naming exactly the omitted
	// block and row range.
	status, body = postQuery(t, ts, queryRequest{Table: "orders", Op: "sum", Columns: []string{"amount"}, AllowDegraded: true})
	if status != http.StatusOK {
		t.Fatalf("degraded sum: status %d, body %v", status, body)
	}
	deg, ok := body["degraded"].([]any)
	if !ok || len(deg) != 1 {
		t.Fatalf("degraded manifest = %v, want exactly one entry", body["degraded"])
	}
	entry := deg[0].(map[string]any)
	if entry["column"] != "amount" || entry["block"].(float64) != 2 ||
		entry["row_start"].(float64) != float64(2*testBlock) || entry["row_count"].(float64) != testBlock {
		t.Fatalf("manifest entry = %v", entry)
	}
	var want int64
	for i, v := range d.amount {
		if i >= 2*testBlock && i < 3*testBlock {
			continue
		}
		want += v
	}
	if got := int64(body["sums"].(map[string]any)["amount"].(float64)); got != want {
		t.Fatalf("degraded sum = %d, want %d (all rows outside block 2)", got, want)
	}

	// The quarantine is visible in /metrics.
	_, met := getJSON(t, ts.URL+"/metrics")
	orders := met["tables"].(map[string]any)["orders"].(map[string]any)
	if orders["blocks_quarantined"].(float64) != 1 {
		t.Fatalf("blocks_quarantined = %v, want 1", orders["blocks_quarantined"])
	}

	// Queries not touching the bad block are exact, degraded or not.
	status, body = postQuery(t, ts, queryRequest{Table: "orders", Where: "status = 1", Op: "count"})
	if status != http.StatusOK || body["matched"].(float64) != 400 {
		t.Fatalf("unrelated query: status %d, matched %v", status, body["matched"])
	}

	// And the offline verifier flags the file.
	rep, err := storage.VerifyFile(amountPath)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("verifier passed the corrupted container")
	}
	_ = srv
}

// TestFaultDegradedRowsStream checks the rows path: a degraded stream
// omits the bad block's rows and the done frame carries the manifest.
func TestFaultDegradedRowsStream(t *testing.T) {
	d := makeData(2000)
	dir := newTestDir(t, d)
	corruptBlock(t, filepath.Join(dir, "orders.amount.lwc"), 2)
	_, ts := newTestServer(t, Config{Dir: dir})

	reqBody, _ := json.Marshal(queryRequest{Table: "orders", Op: "rows",
		Columns: []string{"amount"}, AllowDegraded: true, BatchRows: 100})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var frames []map[string]any
	for sc.Scan() {
		var f map[string]any
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("bad frame %q: %v", sc.Text(), err)
		}
		frames = append(frames, f)
	}
	last := frames[len(frames)-1]
	if last["done"] != true {
		t.Fatalf("stream did not finish cleanly: %v", last)
	}
	if last["streamed"].(float64) != float64(2000-testBlock) {
		t.Fatalf("streamed = %v, want %d", last["streamed"], 2000-testBlock)
	}
	deg, ok := last["degraded"].([]any)
	if !ok || len(deg) != 1 || deg[0].(map[string]any)["block"].(float64) != 2 {
		t.Fatalf("done-frame manifest = %v", last["degraded"])
	}
	var streamed int
	for _, f := range frames[1 : len(frames)-1] {
		for _, r := range f["rows"].([]any) {
			row := int(r.(float64))
			if row >= 2*testBlock && row < 3*testBlock {
				t.Fatalf("row %d from the corrupted block leaked into the stream", row)
			}
			streamed++
		}
	}
	if streamed != 2000-testBlock {
		t.Fatalf("row frames carried %d rows, want %d", streamed, 2000-testBlock)
	}
}

// TestFaultStreamTerminalErrorFrame kills a stream mid-flight (default
// fail-fast mode over a corrupted block) and checks the terminal
// NDJSON error frame with done:false.
func TestFaultStreamTerminalErrorFrame(t *testing.T) {
	d := makeData(2000)
	dir := newTestDir(t, d)
	corruptBlock(t, filepath.Join(dir, "orders.amount.lwc"), 2)
	_, ts := newTestServer(t, Config{Dir: dir})

	reqBody, _ := json.Marshal(queryRequest{Table: "orders", Op: "rows",
		Columns: []string{"amount"}, BatchRows: 100})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// The 200 and header frame are already gone when the failure hits.
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var last map[string]any
	frames := 0
	for sc.Scan() {
		last = nil
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad frame %q: %v", sc.Text(), err)
		}
		frames++
	}
	if frames < 2 {
		t.Fatalf("stream had %d frames; want at least header + terminal", frames)
	}
	errMsg, hasErr := last["error"].(string)
	if !hasErr || errMsg == "" {
		t.Fatalf("terminal frame %v has no error", last)
	}
	if done, present := last["done"]; !present || done != false {
		t.Fatalf("terminal error frame %v must carry done:false", last)
	}
}

// TestFaultReadyzTracksDraining: /readyz flips to 503 while a retired
// mount set is still pinned by an in-flight query, and back to 200
// once it drains; /healthz stays 200 throughout (liveness, not
// readiness).
func TestFaultReadyzTracksDraining(t *testing.T) {
	d := makeData(1000)
	srv, ts := newTestServer(t, Config{Dir: newTestDir(t, d)})

	assertStatus := func(path string, want int) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s = %d, want %d", path, resp.StatusCode, want)
		}
	}
	assertStatus("/readyz", http.StatusOK)

	// Pin the current mount set the way an in-flight query would, then
	// reload: the old set cannot close until the pin drops.
	ms := srv.acquireMounts()
	if err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	assertStatus("/readyz", http.StatusServiceUnavailable)
	assertStatus("/healthz", http.StatusOK)

	ms.release()
	assertStatus("/readyz", http.StatusOK)

	// An idle reload is ready again the moment it returns.
	if err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	assertStatus("/readyz", http.StatusOK)

	srv.Close()
	assertStatus("/readyz", http.StatusServiceUnavailable)
	assertStatus("/healthz", http.StatusOK)
}

// TestFaultInjectionAbsorbedByRetries mounts through a deterministic
// fault injector and checks that the configured retry budget absorbs
// every transient fault: queries answer exactly, and /metrics shows
// the absorbed retries with zero giveups.
func TestFaultInjectionAbsorbedByRetries(t *testing.T) {
	d := makeData(2000)
	wrap, last := faults.Wrap(faults.Config{Seed: 42, TransientProb: 0.2, MaxConsecutive: 2})
	_, ts := newTestServer(t, Config{
		Dir:            newTestDir(t, d),
		ReadRetries:    4,
		FaultInjection: wrap,
	})
	for i := 0; i < 5; i++ {
		status, body := postQuery(t, ts, queryRequest{Table: "orders", Where: "status = 2", Op: "sum", Columns: []string{"amount"}})
		if status != http.StatusOK {
			t.Fatalf("query %d through injector: status %d, body %v", i, status, body)
		}
	}
	if last() == nil || last().InjectedTransient() == 0 {
		t.Fatal("injector fired nothing — raise TransientProb")
	}
	_, met := getJSON(t, ts.URL+"/metrics")
	orders := met["tables"].(map[string]any)["orders"].(map[string]any)
	if orders["read_retries"].(float64) == 0 {
		t.Fatalf("read_retries = %v, want > 0", orders["read_retries"])
	}
	if orders["read_giveups"].(float64) != 0 {
		t.Fatalf("read_giveups = %v, want 0", orders["read_giveups"])
	}
}

// TestFaultCrashSafeWriteNoTornFile: an aborted WriteColumnsFile —
// the library face of kill -9 mid-write — leaves nothing under the
// final name, and a successful one is immediately mountable.
func TestFaultCrashSafeWriteNoTornFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.c.lwc")
	col, err := lwcomp.Encode(makeData(500).amount, lwcomp.WithBlockSize(testBlock))
	if err != nil {
		t.Fatal(err)
	}
	// A column whose source fails mid-write aborts the write.
	bad, err := lwcomp.Encode([]int64{1, 2, 3}, lwcomp.WithBlockSize(2))
	if err != nil {
		t.Fatal(err)
	}
	bad.Blocks[1].Form = nil // no form, no source: the write must fail
	if err := lwcomp.WriteColumnsFile(path, []lwcomp.NamedColumn{{Name: "c", Col: bad}}); err == nil {
		t.Fatal("write of a broken column succeeded")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("aborted write left a file under the final name (stat: %v)", err)
	}
	if err := lwcomp.WriteColumnsFile(path, []lwcomp.NamedColumn{{Name: "c", Col: col}}); err != nil {
		t.Fatal(err)
	}
	rep, err := storage.VerifyFile(path)
	if err != nil || !rep.OK() {
		t.Fatalf("freshly written container failed verification: %v %v", err, rep.Issues)
	}
}
