package server

import (
	"log"
	"path/filepath"
	"time"

	"lwcomp/internal/scrub"
	"lwcomp/internal/storage"
)

// This file hosts the background scrubber inside the query server:
// low-priority sweeps that fsck-walk every mounted container from disk
// under a byte-rate budget, quarantining rotten blocks on the mounted
// columns before any query trips over them. With auto-heal enabled the
// sweep also runs salvage repair on each damaged container and swaps
// the healed generation in via reload — the full self-healing loop:
// detect, quarantine, heal or tombstone, re-admit. Like compaction,
// scrub work yields to query traffic and never takes an admission
// slot; the two daemons share one sweep mutex so at most one
// directory-mutating sweep runs at a time.

// scrubResult summarizes one scrub sweep for /-/scrub and the logs.
type scrubResult struct {
	// Containers and Blocks count what the sweep walked.
	Containers int `json:"containers"`
	// Blocks is the number of blocks verified (tombstones included).
	Blocks int `json:"blocks"`
	// Errors counts this sweep's integrity findings.
	Errors int `json:"errors"`
	// Quarantined counts blocks newly quarantined on mounted columns.
	Quarantined int `json:"quarantined"`
	// Tombstones counts persisted tombstones seen — known degraded
	// state from earlier repairs, not new findings.
	Tombstones int `json:"tombstones"`
	// Healed counts containers salvage-repaired and swapped.
	Healed int `json:"healed"`
	// Unrepairable counts containers repair had to leave untouched.
	Unrepairable int `json:"unrepairable"`
	// TombstonedBlocks counts blocks the sweep's heals declared lost.
	TombstonedBlocks int `json:"tombstoned_blocks"`
	// QuarantineCleared counts ledger entries retired by the healed
	// generations' swap.
	QuarantineCleared int `json:"quarantine_cleared"`
	// Reloaded reports whether healed containers were re-mounted.
	Reloaded bool `json:"reloaded"`
	// Aborted reports a sweep cut short by server shutdown.
	Aborted bool `json:"aborted"`
}

// scrubOptions maps the serving config onto the scrubber's knobs.
func (c Config) scrubOptions() scrub.Options {
	return scrub.Options{
		RateBytesPerSec: c.ScrubRateBytes,
		Retry:           c.retryPolicy(),
		WrapReader:      c.FaultInjection,
	}
}

// repairOptions maps the serving config onto salvage repair's knobs.
func (c Config) repairOptions() scrub.RepairOptions {
	return scrub.RepairOptions{
		Retry:      c.retryPolicy(),
		WrapReader: c.FaultInjection,
	}
}

// scrubLoop is the daemon: one sweep per interval until Close.
func (s *Server) scrubLoop() {
	defer close(s.scrubDone)
	t := time.NewTicker(s.cfg.ScrubInterval)
	defer t.Stop()
	for {
		select {
		case <-s.scrubStop:
			return
		case <-t.C:
			res := s.scrubSweep(s.cfg.ScrubHeal)
			if res.Errors > 0 || res.Healed > 0 || res.Unrepairable > 0 {
				log.Printf("lwcd: scrub sweep: %d container(s), %d error(s), %d quarantined, %d healed, %d unrepairable",
					res.Containers, res.Errors, res.Quarantined, res.Healed, res.Unrepairable)
			}
		}
	}
}

// scrubTarget is one mounted container the sweep verifies: its path on
// disk and its mounted column handles (for quarantine propagation).
type scrubTarget struct {
	path string
	cols []storage.BlockedColumn
}

// scrubSweep fsck-walks every mounted container once, quarantining
// bad blocks on the mounted columns, and — when heal is set — salvage-
// repairing damaged containers and reloading so the healed generations
// serve. Only one sweep (scrub or compact) runs at a time; a tick that
// lands mid-sweep is dropped.
func (s *Server) scrubSweep(heal bool) scrubResult {
	var res scrubResult
	if !s.sweepMu.TryLock() {
		return res
	}
	defer s.sweepMu.Unlock()
	s.scrubSweeps.Add(1)

	// Snapshot the mounted set and hold a reference for the whole
	// sweep so the column handles stay valid under a concurrent
	// reload.
	ms := s.acquireMounts()
	defer ms.release()
	var targets []scrubTarget
	for _, name := range ms.names {
		mt := ms.tables[name]
		for ci, cf := range mt.containers {
			targets = append(targets, scrubTarget{
				path: filepath.Join(s.cfg.Dir, mt.files[ci]),
				cols: cf.Columns(),
			})
		}
	}

	healedAny := false
	clearedOnHeal := 0
	for _, tg := range targets {
		if !s.idleYield(s.scrubStop) {
			res.Aborted = true
			s.scrubAborted.Add(1)
			return res
		}
		rep, err := s.scrubber.ScrubFile(tg.path)
		if err != nil {
			// Environmental (a container deleted mid-sweep): log and
			// move on — the next sweep retries.
			log.Printf("lwcd: scrubbing %s: %v", tg.path, err)
			continue
		}
		res.Containers++
		res.Blocks += rep.Blocks
		res.Errors += len(rep.Issues)
		res.Tombstones += len(rep.Tombstones)
		for _, iss := range rep.Issues {
			if iss.Block < 0 {
				continue
			}
			if bc := findMountedColumn(tg.cols, iss.Column); bc != nil && bc.Col.Quarantine(iss.Block, iss.Err) {
				res.Quarantined++
				s.scrubQuarantined.Add(1)
			}
		}
		if !heal || len(rep.Issues) == 0 {
			continue
		}
		rr, err := scrub.RepairFile(tg.path, s.cfg.repairOptions())
		if err != nil {
			log.Printf("lwcd: repairing %s: %v", tg.path, err)
			continue
		}
		switch rr.Action {
		case scrub.ActionRepaired:
			res.Healed++
			res.TombstonedBlocks += rr.Tombstoned
			s.scrubHealed.Add(1)
			healedAny = true
			for _, bc := range tg.cols {
				clearedOnHeal += bc.Col.QuarantineCount()
			}
			log.Printf("lwcd: healed %s: %d preserved, %d reread, %d stats fixed, %d checksums fixed, %d tombstoned",
				tg.path, rr.Preserved, rr.Reread, rr.StatsFixed, rr.ChecksumsFixed, rr.Tombstoned)
		case scrub.ActionUnrepairable:
			res.Unrepairable++
			s.scrubUnrepairable.Add(1)
			log.Printf("lwcd: %s is unrepairable, left untouched: %s", tg.path, rr.Err)
		}
	}
	s.scrubber.MarkSweepDone()

	if healedAny {
		// The generation swap: retired mount sets drain on their open
		// descriptors (their quarantine ledgers retiring with them),
		// new queries open the healed files with clean ledgers.
		if err := s.Reload(); err != nil {
			log.Printf("lwcd: reload after heal failed (still serving the previous set): %v", err)
		} else {
			res.Reloaded = true
			res.QuarantineCleared = clearedOnHeal
		}
	}
	return res
}

// findMountedColumn resolves a verify finding's column name to the
// mounted handle. A single-column container matches unconditionally —
// under the <table>.<column>.lwc convention the served name comes from
// the filename and the container's internal name is an encode-time
// artifact.
func findMountedColumn(cols []storage.BlockedColumn, name string) *storage.BlockedColumn {
	if len(cols) == 1 {
		return &cols[0]
	}
	for i := range cols {
		if cols[i].Name == name {
			return &cols[i]
		}
	}
	return nil
}
