package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"lwcomp/internal/blocked"
	"lwcomp/internal/scheme"
	"lwcomp/internal/storage"
	"lwcomp/internal/workload"
)

// writeCheapFile ingests vals the "write fast now" way — a fixed ns
// bitpack, no analyzer search — so the background compactor has real
// bytes to win back.
func writeCheapFile(t *testing.T, path string, vals []int64) {
	t.Helper()
	ns, err := scheme.Parse("ns")
	if err != nil {
		t.Fatal(err)
	}
	col, err := blocked.Encode(vals, blocked.EncodeOptions{BlockSize: testBlock, Scheme: ns})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := storage.WriteContainerV3(f, []storage.BlockedColumn{{Name: "payload", Col: col}}); err != nil {
		t.Fatal(err)
	}
}

// dirSize sums the directory's *.lwc sizes.
func dirSize(t *testing.T, dir string) int64 {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".lwc" {
			continue
		}
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	return total
}

// postCompact triggers one synchronous sweep over /-/compact.
func postCompact(t *testing.T, ts *httptest.Server) sweepResult {
	t.Helper()
	resp, err := http.Post(ts.URL+"/-/compact", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /-/compact: status %d", resp.StatusCode)
	}
	var res sweepResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCompactDaemonSweep: a server over cheaply-ingested containers
// shrinks its own directory on a triggered sweep, keeps answering
// queries mid-sweep with identical results, and reports the work in
// /metrics — with zero failed or rejected queries throughout.
func TestCompactDaemonSweep(t *testing.T) {
	dir := t.TempDir()
	data := workload.OrderShipDates(20000, 64, 730120, 7)
	var wantSum int64
	for _, v := range data {
		wantSum += v
	}
	writeCheapFile(t, filepath.Join(dir, "orders.date.lwc"), data)
	writeCheapFile(t, filepath.Join(dir, "ship.date.lwc"), workload.Runs(20000, 96, 9, 3))
	before := dirSize(t, dir)

	srv, ts := newTestServer(t, Config{
		Dir:                 dir,
		CacheBytes:          -1,
		Compact:             true,
		CompactInterval:     time.Hour, // sweeps only when triggered
		CompactMinGainBytes: -1,
	})

	// Queries in flight while the sweep rewrites under them.
	stop := make(chan struct{})
	errs := make(chan string, 64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				status, out := postQuery(t, ts, queryRequest{Table: "orders", Op: "sum", Columns: []string{"date"}})
				if status != http.StatusOK {
					errs <- fmt.Sprintf("query during sweep: %d %v", status, out)
					return
				}
				if got := int64(out["sums"].(map[string]any)["date"].(float64)); got != wantSum {
					errs <- fmt.Sprintf("sum during sweep = %d, want %d", got, wantSum)
					return
				}
			}
		}()
	}

	res := postCompact(t, ts)
	close(stop)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	if res.Rewritten != 2 || res.Aborted {
		t.Fatalf("sweep = %+v, want 2 rewritten, not aborted", res)
	}
	if !res.Reloaded {
		t.Fatalf("sweep did not reload: %+v", res)
	}
	after := dirSize(t, dir)
	if after >= before {
		t.Fatalf("directory did not shrink: %d -> %d bytes", before, after)
	}

	// Post-sweep queries read the compacted generation and still agree.
	status, out := postQuery(t, ts, queryRequest{Table: "orders", Op: "sum", Columns: []string{"date"}})
	if status != http.StatusOK {
		t.Fatalf("post-sweep query status %d: %v", status, out)
	}
	if got := int64(out["sums"].(map[string]any)["date"].(float64)); got != wantSum {
		t.Fatalf("post-sweep sum = %d, want %d", got, wantSum)
	}

	// /metrics carries the compaction section.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var met struct {
		Queries struct {
			Rejected int64 `json:"rejected"`
			Errors   int64 `json:"errors"`
		} `json:"queries"`
		Compaction *metricsCompaction `json:"compaction"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&met); err != nil {
		t.Fatal(err)
	}
	if met.Compaction == nil {
		t.Fatal("metrics missing compaction section")
	}
	c := met.Compaction
	if c.ContainersScanned < 2 || c.ContainersRewritten != 2 || c.BytesReclaimed != before-after {
		t.Fatalf("compaction metrics = %+v, want 2 rewritten reclaiming %d bytes", c, before-after)
	}
	if c.CPUSeconds <= 0 || c.Sweeps != 1 || c.SweepsAborted != 0 || c.Generation != 2 {
		t.Fatalf("compaction metrics = %+v", c)
	}

	// A second sweep finds nothing left to win.
	res = postCompact(t, ts)
	if res.Rewritten != 0 || res.Skipped != 2 {
		t.Fatalf("second sweep = %+v, want all skipped", res)
	}
	_ = srv
}

// TestCompactDaemonDisabled: without -compact, the trigger endpoint
// 404s and /metrics omits the section.
func TestCompactDaemonDisabled(t *testing.T) {
	dir := t.TempDir()
	writeCheapFile(t, filepath.Join(dir, "t.a.lwc"), workload.Runs(4000, 64, 9, 1))
	_, ts := newTestServer(t, Config{Dir: dir, CacheBytes: -1})
	resp, err := http.Post(ts.URL+"/-/compact", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST /-/compact without daemon: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var met map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&met); err != nil {
		t.Fatal(err)
	}
	if _, ok := met["compaction"]; ok {
		t.Fatal("metrics carries a compaction section with the daemon off")
	}
}

// TestCompactDaemonMerge: the daemon's merge pass coalesces small
// same-table part files and the merged table keeps serving the same
// shape and answers.
func TestCompactDaemonMerge(t *testing.T) {
	dir := t.TempDir()
	d := makeData(4000)
	writeCheapFile(t, filepath.Join(dir, "orders.date.lwc"), d.date)
	writeCheapFile(t, filepath.Join(dir, "orders.status.lwc"), d.status)
	srv, ts := newTestServer(t, Config{
		Dir:                 dir,
		CacheBytes:          -1,
		Compact:             true,
		CompactInterval:     time.Hour,
		CompactMinGainBytes: -1,
		CompactMerge:        true,
	})
	res := postCompact(t, ts)
	if res.Merged != 1 {
		t.Fatalf("sweep = %+v, want 1 merged", res)
	}
	if _, err := os.Stat(filepath.Join(dir, "orders.lwc")); err != nil {
		t.Fatalf("merged container missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "orders.date.lwc")); !os.IsNotExist(err) {
		t.Fatalf("part not removed: %v", err)
	}
	if got := srv.Tables(); len(got) != 1 || got[0] != "orders" {
		t.Fatalf("tables after merge = %v", got)
	}
	var wantSum int64
	for _, v := range d.status {
		wantSum += v
	}
	status, out := postQuery(t, ts, queryRequest{Table: "orders", Op: "sum", Columns: []string{"status"}})
	if status != http.StatusOK {
		t.Fatalf("post-merge query status %d: %v", status, out)
	}
	if got := int64(out["sums"].(map[string]any)["status"].(float64)); got != wantSum {
		t.Fatalf("post-merge sum = %d, want %d", got, wantSum)
	}
}

// TestCompactDaemonTicker: a short interval drives sweeps without any
// HTTP trigger, and Close stops the loop cleanly.
func TestCompactDaemonTicker(t *testing.T) {
	dir := t.TempDir()
	writeCheapFile(t, filepath.Join(dir, "orders.date.lwc"), workload.OrderShipDates(8000, 64, 730120, 7))
	before := dirSize(t, dir)
	srv, _ := newTestServer(t, Config{
		Dir:                 dir,
		CacheBytes:          -1,
		Compact:             true,
		CompactInterval:     5 * time.Millisecond,
		CompactMinGainBytes: -1,
	})
	deadline := time.Now().Add(5 * time.Second)
	for srv.compactor.Counters().Rewritten == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ticker never drove a rewrite")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// The loop is down: counters stop moving.
	got := srv.compactor.Counters().Scanned
	time.Sleep(30 * time.Millisecond)
	if now := srv.compactor.Counters().Scanned; now != got {
		t.Fatalf("compactor still scanning after Close: %d -> %d", got, now)
	}
	if after := dirSize(t, dir); after >= before {
		t.Fatalf("ticker sweep did not shrink the directory: %d -> %d", before, after)
	}
}
