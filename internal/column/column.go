package column

import (
	"math/bits"

	"lwcomp/internal/bitpack"
	"lwcomp/internal/core"
)

// distinctCap bounds the exact distinct-counting work; beyond it the
// count is reported as saturated (Distinct == distinctCap+1).
const distinctCap = 1 << 16

// Stats summarizes a logical column for scheme selection and cost
// estimation. It is the public-facing projection of the richer
// core.BlockStats the encode path collects; unlike the hot-path
// collector's sketch, Distinct here is exact up to distinctCap.
type Stats struct {
	// N is the number of elements.
	N int
	// Min and Max are the extreme values (zero for empty columns).
	Min, Max int64
	// Runs is the number of maximal runs of equal values.
	Runs int
	// MaxRunValueWidth is the bit width needed for zigzagged run
	// values.
	MaxRunValueWidth uint
	// NonDecreasing and NonIncreasing report monotonicity.
	NonDecreasing, NonIncreasing bool
	// MaxDeltaWidth is the bit width needed for zigzagged
	// consecutive differences (first delta taken from 0, as DELTA
	// stores it).
	MaxDeltaWidth uint
	// ValueWidth is the bit width needed for zigzagged values.
	ValueWidth uint
	// RangeWidth is the bit width of (Max - Min), i.e. the offset
	// width a global frame of reference would need.
	RangeWidth uint
	// Distinct is the exact distinct count up to distinctCap,
	// saturating at distinctCap+1.
	Distinct int
	// SumAbsDelta accumulates |delta| between consecutive elements;
	// SumAbsDelta/N estimates local variation for FOR suitability.
	SumAbsDelta uint64
}

// Analyze computes Stats over src. The width and run structure come
// from the shared one-pass collector (core.CollectStats); the exact
// distinct count adds one more pass with a hash set, which the
// encode hot path avoids by using the collector's sketch estimate
// instead.
func Analyze(src []int64) Stats {
	bs := core.CollectStats(src, nil)
	s := Stats{
		N:             bs.N,
		Min:           bs.Min,
		Max:           bs.Max,
		Runs:          bs.Runs,
		NonDecreasing: bs.NonDecreasing,
		NonIncreasing: bs.NonIncreasing,
		SumAbsDelta:   bs.SumAbsDelta,
	}
	if bs.N > 0 {
		// Every element's value is some run's head value, so the
		// widest zigzagged value — derivable from the extremes —
		// covers both widths.
		s.ValueWidth = widthMinMax(bs.Min, bs.Max)
		s.MaxRunValueWidth = s.ValueWidth
		s.MaxDeltaWidth = bs.DeltaHist.MaxWidth()
		if fw := uint(bits.Len64(bitpack.Zigzag(bs.First))); fw > s.MaxDeltaWidth {
			s.MaxDeltaWidth = fw
		}
		s.RangeWidth = uint(bits.Len64(uint64(bs.Max - bs.Min)))
	}

	distinct := make(map[int64]struct{}, 256)
	for _, v := range src {
		if len(distinct) > distinctCap {
			break
		}
		distinct[v] = struct{}{}
	}
	s.Distinct = len(distinct)
	if s.Distinct > distinctCap {
		s.Distinct = distinctCap + 1
	}
	return s
}

// widthMinMax returns the width of the widest zigzagged value in a
// column with the given extremes (attained at Min or Max).
func widthMinMax(minV, maxV int64) uint {
	wmin := uint(bits.Len64(bitpack.Zigzag(minV)))
	wmax := uint(bits.Len64(bitpack.Zigzag(maxV)))
	if wmin > wmax {
		return wmin
	}
	return wmax
}

// AvgRunLength returns N/Runs, the mean run length (0 for empty
// columns).
func (s Stats) AvgRunLength() float64 {
	if s.Runs == 0 {
		return 0
	}
	return float64(s.N) / float64(s.Runs)
}

// DistinctSaturated reports whether the distinct count hit its cap.
func (s Stats) DistinctSaturated() bool { return s.Distinct > distinctCap }

// Monotone reports whether the column is non-decreasing or
// non-increasing.
func (s Stats) Monotone() bool { return s.NonDecreasing || s.NonIncreasing }
