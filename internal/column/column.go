package column

import (
	"math/bits"

	"lwcomp/internal/bitpack"
)

// distinctCap bounds the exact distinct-counting work; beyond it the
// count is reported as saturated (Distinct == distinctCap+1).
const distinctCap = 1 << 16

// Stats summarizes a logical column for scheme selection and cost
// estimation.
type Stats struct {
	// N is the number of elements.
	N int
	// Min and Max are the extreme values (zero for empty columns).
	Min, Max int64
	// Runs is the number of maximal runs of equal values.
	Runs int
	// MaxRunValueWidth is the bit width needed for zigzagged run
	// values.
	MaxRunValueWidth uint
	// NonDecreasing and NonIncreasing report monotonicity.
	NonDecreasing, NonIncreasing bool
	// MaxDeltaWidth is the bit width needed for zigzagged
	// consecutive differences (first delta taken from 0, as DELTA
	// stores it).
	MaxDeltaWidth uint
	// ValueWidth is the bit width needed for zigzagged values.
	ValueWidth uint
	// RangeWidth is the bit width of (Max - Min), i.e. the offset
	// width a global frame of reference would need.
	RangeWidth uint
	// Distinct is the exact distinct count up to distinctCap,
	// saturating at distinctCap+1.
	Distinct int
	// SumAbsDelta accumulates |delta| between consecutive elements;
	// SumAbsDelta/N estimates local variation for FOR suitability.
	SumAbsDelta uint64
}

// Analyze computes Stats over src in one pass.
func Analyze(src []int64) Stats {
	var s Stats
	s.N = len(src)
	if len(src) == 0 {
		s.NonDecreasing = true
		s.NonIncreasing = true
		return s
	}
	s.Min, s.Max = src[0], src[0]
	s.Runs = 1
	s.NonDecreasing = true
	s.NonIncreasing = true

	var valueOr, deltaOr, runValueOr uint64
	valueOr = bitpack.Zigzag(src[0])
	deltaOr = bitpack.Zigzag(src[0]) // DELTA stores src[0] as first delta from 0
	runValueOr = bitpack.Zigzag(src[0])

	distinct := make(map[int64]struct{}, 256)
	distinct[src[0]] = struct{}{}

	prev := src[0]
	for _, v := range src[1:] {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		if v != prev {
			s.Runs++
			runValueOr |= bitpack.Zigzag(v)
		}
		if v < prev {
			s.NonDecreasing = false
		}
		if v > prev {
			s.NonIncreasing = false
		}
		d := v - prev
		deltaOr |= bitpack.Zigzag(d)
		if d < 0 {
			s.SumAbsDelta += uint64(-d)
		} else {
			s.SumAbsDelta += uint64(d)
		}
		valueOr |= bitpack.Zigzag(v)
		if len(distinct) <= distinctCap {
			distinct[v] = struct{}{}
		}
		prev = v
	}
	s.ValueWidth = uint(bits.Len64(valueOr))
	s.MaxDeltaWidth = uint(bits.Len64(deltaOr))
	s.MaxRunValueWidth = uint(bits.Len64(runValueOr))
	s.RangeWidth = uint(bits.Len64(uint64(s.Max - s.Min)))
	s.Distinct = len(distinct)
	if s.Distinct > distinctCap {
		s.Distinct = distinctCap + 1
	}
	return s
}

// AvgRunLength returns N/Runs, the mean run length (0 for empty
// columns).
func (s Stats) AvgRunLength() float64 {
	if s.Runs == 0 {
		return 0
	}
	return float64(s.N) / float64(s.Runs)
}

// DistinctSaturated reports whether the distinct count hit its cap.
func (s Stats) DistinctSaturated() bool { return s.Distinct > distinctCap }

// Monotone reports whether the column is non-decreasing or
// non-increasing.
func (s Stats) Monotone() bool { return s.NonDecreasing || s.NonIncreasing }
