// Package column provides column statistics for the lwcomp framework.
//
// The paper's "richer view of the space of lightweight compression
// schemes" requires deciding, per column, which (composite) scheme
// fits: run structure favours RLE/RPE, bounded local variation favours
// FOR, monotone data favours DELTA, low cardinality favours DICT,
// linear trends favour the piecewise-linear model. Stats gathers the
// features those decisions need in a single pass (plus a bounded-size
// distinct sample).
package column
