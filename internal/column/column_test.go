package column

import (
	"testing"
	"testing/quick"
)

func TestAnalyzeEmpty(t *testing.T) {
	s := Analyze(nil)
	if s.N != 0 || s.Runs != 0 || !s.Monotone() {
		t.Fatalf("empty stats = %+v", s)
	}
}

func TestAnalyzeBasics(t *testing.T) {
	s := Analyze([]int64{5, 5, 5, 2, 2, 9})
	if s.N != 6 {
		t.Fatalf("N = %d", s.N)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %d/%d", s.Min, s.Max)
	}
	if s.Runs != 3 {
		t.Fatalf("runs = %d", s.Runs)
	}
	if s.Distinct != 3 {
		t.Fatalf("distinct = %d", s.Distinct)
	}
	if s.NonDecreasing || s.NonIncreasing {
		t.Fatal("monotone flags wrong")
	}
	if got := s.AvgRunLength(); got != 2 {
		t.Fatalf("avg run length = %f", got)
	}
}

func TestAnalyzeMonotone(t *testing.T) {
	s := Analyze([]int64{1, 2, 2, 3})
	if !s.NonDecreasing || s.NonIncreasing || !s.Monotone() {
		t.Fatalf("monotone flags = %+v", s)
	}
	s = Analyze([]int64{3, 2, 2, 1})
	if s.NonDecreasing || !s.NonIncreasing {
		t.Fatalf("monotone flags = %+v", s)
	}
	s = Analyze([]int64{7, 7, 7})
	if !s.NonDecreasing || !s.NonIncreasing || s.Runs != 1 {
		t.Fatalf("constant flags = %+v", s)
	}
}

func TestAnalyzeWidths(t *testing.T) {
	// Values fit in zigzag width 4 (max |v| = 7 → zigzag ≤ 14);
	// deltas are ±1 → zigzag ≤ 2 → width 2.
	src := []int64{5, 6, 7, 6, 5}
	s := Analyze(src)
	if s.ValueWidth != 4 {
		t.Fatalf("value width = %d", s.ValueWidth)
	}
	if s.MaxDeltaWidth != 4 { // first delta is 5→zigzag 10→width 4
		t.Fatalf("delta width = %d", s.MaxDeltaWidth)
	}
	if s.RangeWidth != 2 { // max-min = 2
		t.Fatalf("range width = %d", s.RangeWidth)
	}
}

func TestAnalyzeNegatives(t *testing.T) {
	s := Analyze([]int64{-5, 0, 5})
	if s.Min != -5 || s.Max != 5 {
		t.Fatalf("min/max = %d/%d", s.Min, s.Max)
	}
	if s.SumAbsDelta != 10 {
		t.Fatalf("sum abs delta = %d", s.SumAbsDelta)
	}
}

func TestAnalyzeRunsInvariant(t *testing.T) {
	check := func(raw []uint8) bool {
		src := make([]int64, len(raw))
		for i, r := range raw {
			src[i] = int64(r % 3) // force runs
		}
		s := Analyze(src)
		if len(src) == 0 {
			return s.Runs == 0
		}
		// Count runs directly.
		runs := 1
		for i := 1; i < len(src); i++ {
			if src[i] != src[i-1] {
				runs++
			}
		}
		return s.Runs == runs && s.Distinct <= 3 && s.N == len(src)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctSaturation(t *testing.T) {
	src := make([]int64, distinctCap+10)
	for i := range src {
		src[i] = int64(i)
	}
	s := Analyze(src)
	if !s.DistinctSaturated() {
		t.Fatalf("distinct = %d, want saturated", s.Distinct)
	}
}
