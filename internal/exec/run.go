package exec

import (
	"errors"
	"fmt"

	"lwcomp/internal/vec"
)

// Value is the result of one plan node: a column or a scalar.
type Value struct {
	Col    []int64
	Scalar int64
	// IsScalar distinguishes the two arms.
	IsScalar bool
}

// ErrUnboundInput is returned when a plan references a column name
// absent from the environment.
var ErrUnboundInput = errors.New("exec: unbound input column")

// Stats reports what an execution did; benchmarks use it to compare
// the operator-plan route against fused kernels.
type Stats struct {
	// OpsExecuted counts evaluated nodes.
	OpsExecuted int
	// ElementsProduced sums the lengths of all produced columns.
	ElementsProduced int64
}

// Run evaluates the plan against env (constituent column name → data)
// and returns the output column.
func Run(p *Plan, env map[string][]int64) ([]int64, error) {
	out, _, err := RunWithStats(p, env)
	return out, err
}

// RunWithStats evaluates the plan and also returns execution
// statistics.
func RunWithStats(p *Plan, env map[string][]int64) ([]int64, Stats, error) {
	var st Stats
	if err := p.Validate(); err != nil {
		return nil, st, err
	}
	vals := make([]Value, len(p.Nodes))
	col := func(i int) ([]int64, error) {
		if vals[i].IsScalar {
			return nil, fmt.Errorf("exec: node %d used as column but is scalar", i)
		}
		return vals[i].Col, nil
	}
	scalar := func(i int) (int64, error) {
		if !vals[i].IsScalar {
			return 0, fmt.Errorf("exec: node %d used as scalar but is column", i)
		}
		return vals[i].Scalar, nil
	}

	for i, n := range p.Nodes {
		var v Value
		var err error
		switch n.Op {
		case OpInput:
			data, ok := env[n.Name]
			if !ok {
				err = fmt.Errorf("%w: %q", ErrUnboundInput, n.Name)
				break
			}
			v = Value{Col: data}
		case OpConstScalar:
			v = Value{Scalar: n.Imm, IsScalar: true}
		case OpLen:
			var c []int64
			if c, err = col(n.Args[0]); err == nil {
				v = Value{Scalar: int64(len(c)), IsScalar: true}
			}
		case OpLast:
			var c []int64
			if c, err = col(n.Args[0]); err == nil {
				var last int64
				if last, err = vec.Last(c); err == nil {
					v = Value{Scalar: last, IsScalar: true}
				}
			}
		case OpConstantCol:
			var cv, cn int64
			if cv, err = scalar(n.Args[0]); err != nil {
				break
			}
			if cn, err = scalar(n.Args[1]); err != nil {
				break
			}
			var c []int64
			if c, err = vec.Constant(cv, int(cn)); err == nil {
				v = Value{Col: c}
			}
		case OpIota:
			var start, cn int64
			if start, err = scalar(n.Args[0]); err != nil {
				break
			}
			if cn, err = scalar(n.Args[1]); err != nil {
				break
			}
			var c []int64
			if c, err = vec.Iota(start, int(cn)); err == nil {
				v = Value{Col: c}
			}
		case OpPrefixSumInc:
			var c []int64
			if c, err = col(n.Args[0]); err == nil {
				v = Value{Col: vec.PrefixSumInclusive(c)}
			}
		case OpPrefixSumExc:
			var c []int64
			if c, err = col(n.Args[0]); err == nil {
				v = Value{Col: vec.PrefixSumExclusive(c)}
			}
		case OpPopBack:
			var c []int64
			if c, err = col(n.Args[0]); err == nil {
				var popped []int64
				if popped, err = vec.PopBack(c); err == nil {
					v = Value{Col: popped}
				}
			}
		case OpDelta:
			var c []int64
			if c, err = col(n.Args[0]); err == nil {
				v = Value{Col: vec.Delta(c)}
			}
		case OpScatter:
			var values, positions []int64
			var cn int64
			if values, err = col(n.Args[0]); err != nil {
				break
			}
			if positions, err = col(n.Args[1]); err != nil {
				break
			}
			if cn, err = scalar(n.Args[2]); err != nil {
				break
			}
			var c []int64
			if c, err = vec.Scatter(values, positions, int(cn)); err == nil {
				v = Value{Col: c}
			}
		case OpGather:
			var data, indices []int64
			if data, err = col(n.Args[0]); err != nil {
				break
			}
			if indices, err = col(n.Args[1]); err != nil {
				break
			}
			var c []int64
			if c, err = vec.Gather(data, indices); err == nil {
				v = Value{Col: c}
			}
		case OpElementwise:
			var a, bb []int64
			if a, err = col(n.Args[0]); err != nil {
				break
			}
			if bb, err = col(n.Args[1]); err != nil {
				break
			}
			var c []int64
			if c, err = vec.Elementwise(vec.BinaryOp(n.Imm), a, bb); err == nil {
				v = Value{Col: c}
			}
		case OpElementwiseScalar:
			var a []int64
			var s int64
			if a, err = col(n.Args[0]); err != nil {
				break
			}
			if s, err = scalar(n.Args[1]); err != nil {
				break
			}
			var c []int64
			if c, err = vec.ElementwiseScalar(vec.BinaryOp(n.Imm), a, s); err == nil {
				v = Value{Col: c}
			}
		case OpFusedRunExpand:
			var values, lengths []int64
			if values, err = col(n.Args[0]); err != nil {
				break
			}
			if lengths, err = col(n.Args[1]); err != nil {
				break
			}
			var c []int64
			if c, err = vec.RunExpand(values, lengths); err == nil {
				v = Value{Col: c}
			}
		case OpFusedReplicateSegments:
			var refs []int64
			var segLen, cn int64
			if refs, err = col(n.Args[0]); err != nil {
				break
			}
			if segLen, err = scalar(n.Args[1]); err != nil {
				break
			}
			if cn, err = scalar(n.Args[2]); err != nil {
				break
			}
			var c []int64
			if c, err = vec.ReplicateSegments(refs, int(segLen), int(cn)); err == nil {
				v = Value{Col: c}
			}
		default:
			err = fmt.Errorf("exec: node %d: unknown op %d", i, n.Op)
		}
		if err != nil {
			return nil, st, fmt.Errorf("exec: node %d (%s): %w", i, n.Op, err)
		}
		vals[i] = v
		st.OpsExecuted++
		if !v.IsScalar {
			st.ElementsProduced += int64(len(v.Col))
		}
	}
	last := vals[len(vals)-1]
	if last.IsScalar {
		return nil, st, errors.New("exec: plan output is a scalar, expected a column")
	}
	return last.Col, st, nil
}
