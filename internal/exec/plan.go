package exec

import (
	"errors"
	"fmt"

	"lwcomp/internal/vec"
)

// OpKind enumerates plan operators.
type OpKind uint8

// Plan operators. The first group is the paper's primitive vocabulary;
// the Fused* group contains engine-recognized idioms substituted by
// Fuse.
const (
	// OpInput binds the named constituent column Name.
	OpInput OpKind = iota
	// OpConstScalar produces the scalar Imm.
	OpConstScalar
	// OpLen produces the length of column Args[0] as a scalar.
	OpLen
	// OpLast produces the final element of column Args[0] as a
	// scalar (Algorithm 1 reads n this way).
	OpLast
	// OpConstantCol produces a column holding scalar Args[0]
	// repeated scalar Args[1] times (the paper's Constant(v, n)).
	OpConstantCol
	// OpIota produces the column [0..n) + start for scalars
	// Args[0]=start, Args[1]=n.
	OpIota
	// OpPrefixSumInc produces the inclusive prefix sum of Args[0].
	OpPrefixSumInc
	// OpPrefixSumExc produces the exclusive prefix sum of Args[0].
	OpPrefixSumExc
	// OpPopBack produces Args[0] without its final element.
	OpPopBack
	// OpScatter scatters values Args[0] to positions Args[1] over a
	// fresh zero column of scalar length Args[2].
	OpScatter
	// OpGather produces data(Args[0]) gathered at indices Args[1].
	OpGather
	// OpElementwise applies vec.BinaryOp(Imm) pairwise to columns
	// Args[0] and Args[1].
	OpElementwise
	// OpElementwiseScalar applies vec.BinaryOp(Imm) to column
	// Args[0] and scalar Args[1].
	OpElementwiseScalar
	// OpDelta produces consecutive differences of Args[0].
	OpDelta

	// OpFusedRunExpand expands values Args[0] by lengths Args[1]
	// (replaces the Scatter/PrefixSum/Gather idiom of Algorithm 1).
	OpFusedRunExpand
	// OpFusedReplicateSegments replicates refs Args[0] with segment
	// length scalar Args[1] to total length scalar Args[2] (replaces
	// the Iota/Div/Gather idiom of Algorithm 2).
	OpFusedReplicateSegments
)

// String returns the operator mnemonic.
func (k OpKind) String() string {
	switch k {
	case OpInput:
		return "Input"
	case OpConstScalar:
		return "ConstScalar"
	case OpLen:
		return "Len"
	case OpLast:
		return "Last"
	case OpConstantCol:
		return "Constant"
	case OpIota:
		return "Iota"
	case OpPrefixSumInc:
		return "PrefixSum"
	case OpPrefixSumExc:
		return "PrefixSumExc"
	case OpPopBack:
		return "PopBack"
	case OpScatter:
		return "Scatter"
	case OpGather:
		return "Gather"
	case OpElementwise:
		return "Elementwise"
	case OpElementwiseScalar:
		return "ElementwiseScalar"
	case OpDelta:
		return "Delta"
	case OpFusedRunExpand:
		return "RunExpand"
	case OpFusedReplicateSegments:
		return "ReplicateSegments"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Node is one plan operator application.
type Node struct {
	Op OpKind
	// Args are indices of earlier nodes supplying operands.
	Args []int
	// Imm is the operator immediate: the constant for OpConstScalar,
	// or the vec.BinaryOp code for element-wise operators.
	Imm int64
	// Name is the bound column name for OpInput.
	Name string
}

// Plan is a straight-line dataflow program whose final node is the
// output column.
type Plan struct {
	Nodes []Node
}

// Validate checks structural well-formedness: argument indices must
// reference earlier nodes and operators must have the right arity.
func (p *Plan) Validate() error {
	if len(p.Nodes) == 0 {
		return errors.New("exec: empty plan")
	}
	arity := map[OpKind]int{
		OpInput: 0, OpConstScalar: 0,
		OpLen: 1, OpLast: 1, OpPrefixSumInc: 1, OpPrefixSumExc: 1,
		OpPopBack: 1, OpDelta: 1,
		OpConstantCol: 2, OpIota: 2, OpGather: 2, OpElementwise: 2,
		OpElementwiseScalar: 2, OpFusedRunExpand: 2,
		OpScatter: 3, OpFusedReplicateSegments: 3,
	}
	for i, n := range p.Nodes {
		want, ok := arity[n.Op]
		if !ok {
			return fmt.Errorf("exec: node %d: unknown op %d", i, n.Op)
		}
		if len(n.Args) != want {
			return fmt.Errorf("exec: node %d (%s): want %d args, have %d", i, n.Op, want, len(n.Args))
		}
		for _, a := range n.Args {
			if a < 0 || a >= i {
				return fmt.Errorf("exec: node %d (%s): arg %d does not reference an earlier node", i, n.Op, a)
			}
		}
		if (n.Op == OpElementwise || n.Op == OpElementwiseScalar) && !vec.BinaryOp(n.Imm).Valid() {
			return fmt.Errorf("exec: node %d (%s): invalid binary op code %d", i, n.Op, n.Imm)
		}
	}
	return nil
}

// String renders the plan one node per line for debugging and docs.
func (p *Plan) String() string {
	out := ""
	for i, n := range p.Nodes {
		out += fmt.Sprintf("%%%d = %s", i, n.Op)
		if n.Op == OpInput {
			out += fmt.Sprintf("(%q)", n.Name)
		} else {
			out += "("
			for j, a := range n.Args {
				if j > 0 {
					out += ", "
				}
				out += fmt.Sprintf("%%%d", a)
			}
			switch n.Op {
			case OpConstScalar:
				out += fmt.Sprintf("%d", n.Imm)
			case OpElementwise, OpElementwiseScalar:
				out += fmt.Sprintf("; %s", vec.BinaryOp(n.Imm))
			}
			out += ")"
		}
		out += "\n"
	}
	return out
}

// Inputs returns the distinct input column names referenced by the
// plan, in first-use order.
func (p *Plan) Inputs() []string {
	seen := map[string]bool{}
	var names []string
	for _, n := range p.Nodes {
		if n.Op == OpInput && !seen[n.Name] {
			seen[n.Name] = true
			names = append(names, n.Name)
		}
	}
	return names
}

// Builder assembles plans with value-typed handles.
type Builder struct {
	plan Plan
}

// NewBuilder returns an empty plan builder.
func NewBuilder() *Builder { return &Builder{} }

// Ref is a handle to a plan node produced by a Builder.
type Ref int

func (b *Builder) add(n Node) Ref {
	b.plan.Nodes = append(b.plan.Nodes, n)
	return Ref(len(b.plan.Nodes) - 1)
}

// Input binds the named constituent column.
func (b *Builder) Input(name string) Ref {
	return b.add(Node{Op: OpInput, Name: name})
}

// ConstScalar produces the scalar v.
func (b *Builder) ConstScalar(v int64) Ref {
	return b.add(Node{Op: OpConstScalar, Imm: v})
}

// Len produces the length of col as a scalar.
func (b *Builder) Len(col Ref) Ref {
	return b.add(Node{Op: OpLen, Args: []int{int(col)}})
}

// Last produces the final element of col as a scalar.
func (b *Builder) Last(col Ref) Ref {
	return b.add(Node{Op: OpLast, Args: []int{int(col)}})
}

// ConstantCol produces a column of scalar v repeated scalar n times.
func (b *Builder) ConstantCol(v, n Ref) Ref {
	return b.add(Node{Op: OpConstantCol, Args: []int{int(v), int(n)}})
}

// Iota produces [0..n) + start.
func (b *Builder) Iota(start, n Ref) Ref {
	return b.add(Node{Op: OpIota, Args: []int{int(start), int(n)}})
}

// PrefixSumInc produces the inclusive prefix sum of col.
func (b *Builder) PrefixSumInc(col Ref) Ref {
	return b.add(Node{Op: OpPrefixSumInc, Args: []int{int(col)}})
}

// PrefixSumExc produces the exclusive prefix sum of col.
func (b *Builder) PrefixSumExc(col Ref) Ref {
	return b.add(Node{Op: OpPrefixSumExc, Args: []int{int(col)}})
}

// PopBack produces col without its final element.
func (b *Builder) PopBack(col Ref) Ref {
	return b.add(Node{Op: OpPopBack, Args: []int{int(col)}})
}

// Scatter scatters values to positions over a zero column of scalar
// length n.
func (b *Builder) Scatter(values, positions, n Ref) Ref {
	return b.add(Node{Op: OpScatter, Args: []int{int(values), int(positions), int(n)}})
}

// Gather produces data gathered at indices.
func (b *Builder) Gather(data, indices Ref) Ref {
	return b.add(Node{Op: OpGather, Args: []int{int(data), int(indices)}})
}

// Elementwise applies op pairwise to a and b.
func (b *Builder) Elementwise(op vec.BinaryOp, x, y Ref) Ref {
	return b.add(Node{Op: OpElementwise, Args: []int{int(x), int(y)}, Imm: int64(op)})
}

// ElementwiseScalar applies op to column x and scalar s.
func (b *Builder) ElementwiseScalar(op vec.BinaryOp, x, s Ref) Ref {
	return b.add(Node{Op: OpElementwiseScalar, Args: []int{int(x), int(s)}, Imm: int64(op)})
}

// Delta produces consecutive differences of col.
func (b *Builder) Delta(col Ref) Ref {
	return b.add(Node{Op: OpDelta, Args: []int{int(col)}})
}

// Build finalizes and validates the plan; the last added node is the
// output.
func (b *Builder) Build() (*Plan, error) {
	p := &Plan{Nodes: b.plan.Nodes}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
