package exec

import "lwcomp/internal/vec"

// Fuse rewrites a plan by recognizing the two decompression idioms of
// the paper and substituting fused operators:
//
//   - Algorithm 1's run-expansion tail —
//     Gather(values, PrefixSum(Scatter(ones, PopBack(PrefixSum(lengths)), n)))
//     becomes RunExpand(values, lengths);
//   - Algorithm 2's step-function evaluation —
//     Gather(refs, Elementwise(÷, id, Constant(ℓ, n)))
//     becomes ReplicateSegments(refs, ℓ, n).
//
// Fusion never changes results; it exists so the benchmarks can
// quantify the gap between executing the paper's literal operator
// plans and executing recognized idioms (EXP-B, EXP-D). If no idiom
// matches, the original plan is returned unchanged.
func Fuse(p *Plan) *Plan {
	out := fuseRunExpand(p)
	out = fuseReplicateSegments(out)
	return out
}

// fuseRunExpand detects Algorithm 1's Scatter/PrefixSum/Gather idiom.
// It restarts the scan after every rewrite, since dead-node
// elimination renumbers the plan.
func fuseRunExpand(p *Plan) *Plan {
	for {
		rewritten, ok := fuseRunExpandOnce(p)
		if !ok {
			return p
		}
		p = rewritten
	}
}

func fuseRunExpandOnce(p *Plan) (*Plan, bool) {
	nodes := p.Nodes
	for i, n := range nodes {
		// Gather(values, idx)
		if n.Op != OpGather {
			continue
		}
		idx := nodes[n.Args[1]]
		// idx = PrefixSumInc(delta)
		if idx.Op != OpPrefixSumInc {
			continue
		}
		sc := nodes[idx.Args[0]]
		// delta = Scatter(ones, positions, total)
		if sc.Op != OpScatter {
			continue
		}
		ones := nodes[sc.Args[0]]
		if ones.Op != OpConstantCol {
			continue
		}
		onesVal := nodes[ones.Args[0]]
		if onesVal.Op != OpConstScalar || onesVal.Imm != 1 {
			continue
		}
		pb := nodes[sc.Args[1]]
		// positions = PopBack(ps)
		if pb.Op != OpPopBack {
			continue
		}
		ps := nodes[pb.Args[0]]
		// ps = PrefixSumInc(lengths)
		if ps.Op != OpPrefixSumInc {
			continue
		}
		total := nodes[sc.Args[2]]
		// total = Last(ps) over the same prefix sum
		if total.Op != OpLast || total.Args[0] != pb.Args[0] {
			continue
		}
		lengths := ps.Args[0]
		values := n.Args[0]
		fused := append([]Node{}, nodes...)
		fused[i] = Node{Op: OpFusedRunExpand, Args: []int{values, lengths}}
		return eliminateDead(&Plan{Nodes: fused}), true
	}
	return p, false
}

// fuseReplicateSegments detects Algorithm 2's step-function idiom. It
// restarts the scan after every rewrite.
func fuseReplicateSegments(p *Plan) *Plan {
	for {
		rewritten, ok := fuseReplicateSegmentsOnce(p)
		if !ok {
			return p
		}
		p = rewritten
	}
}

func fuseReplicateSegmentsOnce(p *Plan) (*Plan, bool) {
	nodes := p.Nodes
	for i, n := range nodes {
		// Gather(refs, segIdx)
		if n.Op != OpGather {
			continue
		}
		div := nodes[n.Args[1]]
		// segIdx = Elementwise(÷, id, ells)
		if div.Op != OpElementwise || vec.BinaryOp(div.Imm) != vec.Div {
			continue
		}
		id := nodes[div.Args[0]]
		ells := nodes[div.Args[1]]
		// ells = Constant(ℓ, n) with ℓ a literal scalar
		if ells.Op != OpConstantCol {
			continue
		}
		ellVal := nodes[ells.Args[0]]
		if ellVal.Op != OpConstScalar {
			continue
		}
		nScalar := -1
		switch id.Op {
		case OpIota:
			// id = Iota(0, n)
			start := nodes[id.Args[0]]
			if start.Op != OpConstScalar || start.Imm != 0 {
				continue
			}
			nScalar = id.Args[1]
		case OpPrefixSumExc:
			// id = PrefixSumExc(Constant(1, n))
			onesCol := nodes[id.Args[0]]
			if onesCol.Op != OpConstantCol {
				continue
			}
			onesVal := nodes[onesCol.Args[0]]
			if onesVal.Op != OpConstScalar || onesVal.Imm != 1 {
				continue
			}
			nScalar = onesCol.Args[1]
		default:
			continue
		}
		refs := n.Args[0]
		fused := append([]Node{}, nodes...)
		fused[i] = Node{Op: OpFusedReplicateSegments, Args: []int{refs, ells.Args[0], nScalar}}
		return eliminateDead(&Plan{Nodes: fused}), true
	}
	return p, false
}

// eliminateDead removes nodes unreachable from the output and
// renumbers arguments.
func eliminateDead(p *Plan) *Plan {
	n := len(p.Nodes)
	if n == 0 {
		return p
	}
	live := make([]bool, n)
	var mark func(int)
	mark = func(i int) {
		if live[i] {
			return
		}
		live[i] = true
		for _, a := range p.Nodes[i].Args {
			mark(a)
		}
	}
	mark(n - 1)

	remap := make([]int, n)
	var out []Node
	for i, nd := range p.Nodes {
		if !live[i] {
			remap[i] = -1
			continue
		}
		remap[i] = len(out)
		args := make([]int, len(nd.Args))
		for j, a := range nd.Args {
			args[j] = remap[a]
		}
		out = append(out, Node{Op: nd.Op, Args: args, Imm: nd.Imm, Name: nd.Name})
	}
	return &Plan{Nodes: out}
}
