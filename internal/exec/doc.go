// Package exec is a miniature columnar execution engine.
//
// Its operator vocabulary is exactly the one the paper uses to express
// decompression (Algorithms 1 and 2): prefix sums, constants, pop-back,
// scatter, gather and element-wise arithmetic — "the same columnar
// operations which show up in query execution plans". Compression
// schemes emit their decompression as a Plan over their constituent
// columns; the engine evaluates it, optionally after recognizing and
// fusing well-known idioms (run expansion, segment replication).
//
// Plans are straight-line dataflow programs: a slice of nodes in
// topological order, each producing either a column or a scalar, with
// the final node designated as the output.
package exec
