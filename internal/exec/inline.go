package exec

import "fmt"

// Inline grafts an inner plan into an outer plan: every outer
// Input(inputName) node is replaced by the inner plan's output, and
// the inner plan's own Input nodes are renamed to prefix + their
// name. The result is a single flat plan.
//
// Inlining is what lets composite compressed forms decompress as one
// operator program: RLE over DELTA-compressed run values becomes
// "prefix-sum the deltas, then run-expand" — one plan, no
// materialization boundary between schemes. This is the paper's "no
// clear distinction between decompression and analytic query
// execution" carried across composition levels.
func Inline(outer *Plan, inputName string, inner *Plan, prefix string) (*Plan, error) {
	if err := outer.Validate(); err != nil {
		return nil, fmt.Errorf("exec: Inline outer: %w", err)
	}
	if err := inner.Validate(); err != nil {
		return nil, fmt.Errorf("exec: Inline inner: %w", err)
	}
	found := false
	for _, n := range outer.Nodes {
		if n.Op == OpInput && n.Name == inputName {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("exec: Inline: outer plan has no input %q", inputName)
	}

	var nodes []Node
	// Inner nodes first, inputs renamed.
	for _, n := range inner.Nodes {
		nn := Node{Op: n.Op, Imm: n.Imm, Name: n.Name}
		nn.Args = append([]int{}, n.Args...)
		if n.Op == OpInput {
			nn.Name = prefix + n.Name
		}
		nodes = append(nodes, nn)
	}
	innerOut := len(inner.Nodes) - 1

	// Outer nodes follow, renumbered; Input(inputName) collapses to
	// the inner output.
	remap := make([]int, len(outer.Nodes))
	for i, n := range outer.Nodes {
		if n.Op == OpInput && n.Name == inputName {
			remap[i] = innerOut
			continue
		}
		nn := Node{Op: n.Op, Imm: n.Imm, Name: n.Name}
		nn.Args = make([]int, len(n.Args))
		for j, a := range n.Args {
			nn.Args[j] = remap[a]
		}
		remap[i] = len(nodes)
		nodes = append(nodes, nn)
	}
	out := eliminateDead(&Plan{Nodes: nodes})
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("exec: Inline produced invalid plan: %w", err)
	}
	return out, nil
}
