package exec

import (
	"errors"
	"strings"
	"testing"

	"lwcomp/internal/vec"
)

// buildRLEPlan constructs Algorithm 1 of the paper by hand, the way
// the RLE scheme does.
func buildRLEPlan(t *testing.T) *Plan {
	t.Helper()
	b := NewBuilder()
	lengths := b.Input("lengths")
	values := b.Input("values")
	ps := b.PrefixSumInc(lengths)
	n := b.Last(ps)
	popped := b.PopBack(ps)
	one := b.ConstScalar(1)
	onesLen := b.Len(popped)
	ones := b.ConstantCol(one, onesLen)
	posDelta := b.Scatter(ones, popped, n)
	positions := b.PrefixSumInc(posDelta)
	b.Gather(values, positions)
	plan, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return plan
}

func rleEnv() map[string][]int64 {
	return map[string][]int64{
		"lengths": {3, 1, 2},
		"values":  {7, 9, 7},
	}
}

func TestAlgorithm1Plan(t *testing.T) {
	plan := buildRLEPlan(t)
	got, err := Run(plan, rleEnv())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	want := []int64{7, 7, 7, 9, 7, 7}
	if !vec.Equal(got, want) {
		t.Fatalf("Algorithm 1 = %v, want %v", got, want)
	}
}

func TestAlgorithm1Fusion(t *testing.T) {
	plan := buildRLEPlan(t)
	fused := Fuse(plan)
	if len(fused.Nodes) >= len(plan.Nodes) {
		t.Fatalf("fusion did not shrink plan: %d -> %d nodes", len(plan.Nodes), len(fused.Nodes))
	}
	found := false
	for _, n := range fused.Nodes {
		if n.Op == OpFusedRunExpand {
			found = true
		}
	}
	if !found {
		t.Fatal("fused plan lacks RunExpand")
	}
	got, err := Run(fused, rleEnv())
	if err != nil {
		t.Fatalf("run fused: %v", err)
	}
	if !vec.Equal(got, []int64{7, 7, 7, 9, 7, 7}) {
		t.Fatalf("fused result = %v", got)
	}
}

// buildFORPlan constructs Algorithm 2 of the paper by hand.
func buildFORPlan(t *testing.T, segLen int64) *Plan {
	t.Helper()
	b := NewBuilder()
	offsets := b.Input("offsets")
	refs := b.Input("refs")
	one := b.ConstScalar(1)
	n := b.Len(offsets)
	ones := b.ConstantCol(one, n)
	id := b.PrefixSumExc(ones)
	ell := b.ConstScalar(segLen)
	ells := b.ConstantCol(ell, n)
	refIdx := b.Elementwise(vec.Div, id, ells)
	repl := b.Gather(refs, refIdx)
	b.Elementwise(vec.Add, repl, offsets)
	plan, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return plan
}

func forEnv() map[string][]int64 {
	return map[string][]int64{
		"refs":    {100, 200},
		"offsets": {1, 2, 3, 4, 5},
	}
}

func TestAlgorithm2Plan(t *testing.T) {
	plan := buildFORPlan(t, 3)
	got, err := Run(plan, forEnv())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	want := []int64{101, 102, 103, 204, 205}
	if !vec.Equal(got, want) {
		t.Fatalf("Algorithm 2 = %v, want %v", got, want)
	}
}

func TestAlgorithm2Fusion(t *testing.T) {
	plan := buildFORPlan(t, 3)
	fused := Fuse(plan)
	if len(fused.Nodes) >= len(plan.Nodes) {
		t.Fatalf("fusion did not shrink plan: %d -> %d", len(plan.Nodes), len(fused.Nodes))
	}
	found := false
	for _, n := range fused.Nodes {
		if n.Op == OpFusedReplicateSegments {
			found = true
		}
	}
	if !found {
		t.Fatalf("fused plan lacks ReplicateSegments:\n%s", fused)
	}
	got, err := Run(fused, forEnv())
	if err != nil {
		t.Fatalf("run fused: %v", err)
	}
	if !vec.Equal(got, []int64{101, 102, 103, 204, 205}) {
		t.Fatalf("fused result = %v", got)
	}
}

func TestFuseLeavesUnrelatedPlansAlone(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x")
	b.PrefixSumInc(x)
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	fused := Fuse(plan)
	if len(fused.Nodes) != len(plan.Nodes) {
		t.Fatal("fusion altered a plan with no idiom")
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	// Empty plan.
	if err := (&Plan{}).Validate(); err == nil {
		t.Fatal("empty plan accepted")
	}
	// Forward reference.
	p := &Plan{Nodes: []Node{{Op: OpPrefixSumInc, Args: []int{0}}}}
	if err := p.Validate(); err == nil {
		t.Fatal("self reference accepted")
	}
	// Wrong arity.
	p = &Plan{Nodes: []Node{{Op: OpInput, Name: "x"}, {Op: OpGather, Args: []int{0}}}}
	if err := p.Validate(); err == nil {
		t.Fatal("wrong arity accepted")
	}
	// Invalid binary op immediate.
	p = &Plan{Nodes: []Node{
		{Op: OpInput, Name: "x"},
		{Op: OpInput, Name: "y"},
		{Op: OpElementwise, Args: []int{0, 1}, Imm: 99},
	}}
	if err := p.Validate(); err == nil {
		t.Fatal("invalid op code accepted")
	}
}

func TestRunErrors(t *testing.T) {
	// Unbound input.
	b := NewBuilder()
	x := b.Input("missing")
	b.PrefixSumInc(x)
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(plan, nil); !errors.Is(err, ErrUnboundInput) {
		t.Fatalf("unbound input err = %v", err)
	}

	// Scalar output rejected.
	b = NewBuilder()
	x = b.Input("x")
	b.Len(x)
	plan, err = b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(plan, map[string][]int64{"x": {1}}); err == nil {
		t.Fatal("scalar output accepted")
	}

	// Scalar/column confusion.
	p := &Plan{Nodes: []Node{
		{Op: OpConstScalar, Imm: 3},
		{Op: OpPrefixSumInc, Args: []int{0}},
	}}
	if _, err := Run(p, nil); err == nil {
		t.Fatal("scalar used as column accepted")
	}

	// Gather out of range surfaces as an error, not a panic.
	b = NewBuilder()
	d := b.Input("data")
	i := b.Input("idx")
	b.Gather(d, i)
	plan, err = b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(plan, map[string][]int64{"data": {1}, "idx": {5}}); err == nil {
		t.Fatal("gather out of range accepted")
	}
}

func TestRunWithStats(t *testing.T) {
	plan := buildRLEPlan(t)
	_, st, err := RunWithStats(plan, rleEnv())
	if err != nil {
		t.Fatal(err)
	}
	if st.OpsExecuted != len(plan.Nodes) {
		t.Fatalf("ops = %d, want %d", st.OpsExecuted, len(plan.Nodes))
	}
	if st.ElementsProduced == 0 {
		t.Fatal("no elements recorded")
	}
}

func TestPlanStringAndInputs(t *testing.T) {
	plan := buildRLEPlan(t)
	s := plan.String()
	for _, want := range []string{"Input", "PrefixSum", "Scatter", "Gather"} {
		if !strings.Contains(s, want) {
			t.Fatalf("plan string missing %q:\n%s", want, s)
		}
	}
	in := plan.Inputs()
	if len(in) != 2 || in[0] != "lengths" || in[1] != "values" {
		t.Fatalf("Inputs = %v", in)
	}
}

func TestIotaAndElementwiseScalarOps(t *testing.T) {
	b := NewBuilder()
	start := b.ConstScalar(10)
	n := b.ConstScalar(4)
	io := b.Iota(start, n)
	two := b.ConstScalar(2)
	b.ElementwiseScalar(vec.Mul, io, two)
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(got, []int64{20, 22, 24, 26}) {
		t.Fatalf("iota*2 = %v", got)
	}
}

func TestDeltaOp(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x")
	b.Delta(x)
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(plan, map[string][]int64{"x": {3, 5, 5, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(got, []int64{3, 2, 0, -3}) {
		t.Fatalf("delta = %v", got)
	}
}

func TestOpKindStrings(t *testing.T) {
	for k := OpInput; k <= OpFusedReplicateSegments; k++ {
		if s := k.String(); strings.HasPrefix(s, "OpKind(") {
			t.Fatalf("missing mnemonic for op %d", k)
		}
	}
	if s := OpKind(250).String(); !strings.HasPrefix(s, "OpKind(") {
		t.Fatalf("unknown op string = %q", s)
	}
}
