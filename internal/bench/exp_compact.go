package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"lwcomp/internal/blocked"
	"lwcomp/internal/scheme"
	"lwcomp/internal/server"
	"lwcomp/internal/storage"
	"lwcomp/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "V",
		Title: "Background recompaction: write fast now, shrink later",
		Claim: `a directory ingested on the fast path (pruned or fixed-scheme search) carries recoverable bytes, and the background compactor recovers them — shrinking toward the exhaustive-search size while concurrent queries run to completion with zero failures and zero rejections, the swap hidden behind atomic rename`,
		Run:   runExpV,
	})
}

// expVMetrics is the slice of /metrics EXP-V records: query outcomes
// plus the compaction section (full shape in internal/server).
type expVMetrics struct {
	Queries struct {
		Total    int64 `json:"total"`
		Rejected int64 `json:"rejected"`
		Timeouts int64 `json:"timeouts"`
		Errors   int64 `json:"errors"`
	} `json:"queries"`
	Compaction struct {
		Scanned    int64   `json:"containers_scanned"`
		Rewritten  int64   `json:"containers_rewritten"`
		Skipped    int64   `json:"containers_skipped"`
		Failed     int64   `json:"containers_failed"`
		Reclaimed  int64   `json:"bytes_reclaimed"`
		CPUSeconds float64 `json:"cpu_seconds"`
		Generation uint64  `json:"generation"`
	} `json:"compaction"`
}

// expVDirBytes sums the directory's *.lwc sizes.
func expVDirBytes(dir string) (int64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".lwc" {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return 0, err
		}
		total += info.Size()
	}
	return total, nil
}

// countingWriter tallies bytes without keeping them — the exhaustive
// reference needs sizes, not files.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

func runExpV(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "V",
		Title: "Background recompaction: write fast now, shrink later",
		Claim: "fast-path ingest, then compact in the background: the directory shrinks toward the exhaustive-search size with zero failed or rejected queries during the sweep",
		Headers: []string{
			"stage", "containers", "bytes", "x raw", "vs exhaustive",
		},
	}

	// A skewed workload ingested the fast way: the magnitude-skewed
	// column takes a fixed ns bitpack (no analyzer at all — maximum
	// write speed, every block padded to its widest value), the rest a
	// heavily pruned search (top-1 estimate over a tiny sample).
	dir, err := os.MkdirTemp("", "lwcomp-expv-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	ns, err := scheme.Parse("ns")
	if err != nil {
		return nil, err
	}
	cols := []struct {
		name string
		data []int64
		opts blocked.EncodeOptions
	}{
		{"amount", workload.SkewedMagnitude(cfg.N, 40, cfg.Seed), blocked.EncodeOptions{BlockSize: 1 << 14, Scheme: ns}},
		{"date", workload.OrderShipDates(cfg.N, 64, 730120, cfg.Seed+1), blocked.EncodeOptions{BlockSize: 1 << 14, TrialK: 1, SampleSize: 64}},
		{"status", workload.LowCardinality(cfg.N, 8, cfg.Seed+2), blocked.EncodeOptions{BlockSize: 1 << 14, TrialK: 1, SampleSize: 64}},
	}
	rawBytes := int64(0)
	refBytes := int64(0)
	for _, c := range cols {
		rawBytes += int64(len(c.data)) * 8
		col, err := blocked.Encode(c.data, c.opts)
		if err != nil {
			return nil, err
		}
		f, err := os.Create(filepath.Join(dir, "orders."+c.name+".lwc"))
		if err != nil {
			return nil, err
		}
		if err := storage.WriteContainerV3(f, []storage.BlockedColumn{{Name: "c", Col: col}}); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		// The exhaustive reference: what the same data costs when every
		// candidate is trial-compressed — the floor compaction aims at.
		ref, err := blocked.Encode(c.data, blocked.EncodeOptions{BlockSize: 1 << 14, Exhaustive: true})
		if err != nil {
			return nil, err
		}
		var cw countingWriter
		if err := storage.WriteContainerV3(&cw, []storage.BlockedColumn{{Name: "c", Col: ref}}); err != nil {
			return nil, err
		}
		refBytes += cw.n
	}
	before, err := expVDirBytes(dir)
	if err != nil {
		return nil, err
	}

	// Serve the directory with the compaction daemon armed but idle
	// (interval far out; the sweep is triggered over HTTP for a
	// deterministic run). Client concurrency stays under the admission
	// limit so the low-priority sweep finds the spare capacity it
	// yields for.
	srv, err := server.New(server.Config{
		Dir:             dir,
		MaxConcurrent:   64,
		MaxQueue:        100000,
		Compact:         true,
		CompactInterval: time.Hour,
		// Any positive gain rewrites: the experiment measures the full
		// recoverable gap, thresholding is EXP-V's subject elsewhere.
		CompactMinGainBytes: -1,
	})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	// Continuous traffic through the whole sweep: 16 clients looping a
	// representative mixed query until the sweep returns.
	body, _ := json.Marshal(map[string]any{
		"table": "orders", "where": "status = 3", "op": "sum", "columns": []string{"amount"}})
	stop := make(chan struct{})
	var okN, badN atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					badN.Add(1)
					return
				}
				if resp.StatusCode == http.StatusOK {
					okN.Add(1)
				} else {
					badN.Add(1)
				}
				buf := make([]byte, 4096)
				for {
					if _, err := resp.Body.Read(buf); err != nil {
						break
					}
				}
				resp.Body.Close()
			}
		}()
	}
	sweepStart := time.Now()
	resp, err := http.Post(ts.URL+"/-/compact", "application/json", nil)
	if err != nil {
		close(stop)
		wg.Wait()
		return nil, err
	}
	var sweep struct {
		Rewritten int  `json:"rewritten"`
		Aborted   bool `json:"aborted"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sweep)
	resp.Body.Close()
	sweepWall := time.Since(sweepStart)
	close(stop)
	wg.Wait()
	if err != nil {
		return nil, err
	}

	after, err := expVDirBytes(dir)
	if err != nil {
		return nil, err
	}
	var m expVMetrics
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		return nil, err
	}
	err = json.NewDecoder(mresp.Body).Decode(&m)
	mresp.Body.Close()
	if err != nil {
		return nil, err
	}

	// The acceptance gates: measurable storage reclaimed, and zero
	// failed or blocked queries while the swap happened underneath.
	if sweep.Rewritten == 0 || after >= before {
		return nil, fmt.Errorf("EXP-V: sweep reclaimed nothing (%d rewritten, %d -> %d bytes)", sweep.Rewritten, before, after)
	}
	if sweep.Aborted {
		return nil, fmt.Errorf("EXP-V: sweep aborted")
	}
	if bad := badN.Load(); bad > 0 {
		return nil, fmt.Errorf("EXP-V: %d queries failed or were rejected during the concurrent sweep", bad)
	}
	if m.Queries.Rejected > 0 || m.Queries.Errors > 0 || m.Queries.Timeouts > 0 {
		return nil, fmt.Errorf("EXP-V: server counted %d rejections, %d errors, %d timeouts during the sweep",
			m.Queries.Rejected, m.Queries.Errors, m.Queries.Timeouts)
	}
	if m.Compaction.Failed > 0 {
		return nil, fmt.Errorf("EXP-V: %d containers failed compaction", m.Compaction.Failed)
	}

	vsRef := func(b int64) string { return f2(float64(b) / float64(refBytes)) }
	t.AddRow("fast-path ingest", itoa(len(cols)), itoa(int(before)), f2(float64(rawBytes)/float64(before)), vsRef(before))
	t.AddRow("after compaction", itoa(len(cols)), itoa(int(after)), f2(float64(rawBytes)/float64(after)), vsRef(after))
	t.AddRow("exhaustive reference", itoa(len(cols)), itoa(int(refBytes)), f2(float64(rawBytes)/float64(refBytes)), "1.00")

	reclaimed := before - after
	t.Metrics = append(t.Metrics,
		Metric{Name: "compact/bytes reclaimed", NsPerOp: float64(sweepWall.Nanoseconds()), MBPerS: float64(reclaimed) / 1e6 / m.Compaction.CPUSeconds},
		Metric{Name: "compact/queries during sweep", AllocsPerOp: float64(okN.Load())},
	)
	t.Notes = append(t.Notes,
		fmt.Sprintf("sweep reclaimed %d of %d bytes (%.1f%%) for %.2fs compact cpu — %.1f MB per cpu-second; generation %d",
			reclaimed, before, 100*float64(reclaimed)/float64(before), m.Compaction.CPUSeconds,
			float64(reclaimed)/1e6/m.Compaction.CPUSeconds, m.Compaction.Generation),
		fmt.Sprintf("%d queries completed during the concurrent sweep with zero failures, rejections or timeouts", okN.Load()),
		"compact/bytes reclaimed: ns_per_op is sweep wall time, MB/s is bytes reclaimed per compact cpu-second",
	)
	return t, nil
}
