package bench

import (
	"fmt"

	"lwcomp/internal/core"
	"lwcomp/internal/query"
	"lwcomp/internal/scheme"
	"lwcomp/internal/sel"
	"lwcomp/internal/vec"
	"lwcomp/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "O",
		Title: "Fused unpack-and-compare vs decompress-then-filter",
		Claim: `Lessons 1 pushed into the scan: a range predicate evaluated on the packed words (fused kernels + bitmap selection, zero steady-state allocations) vs materializing the column first`,
		Run:   runExpO,
	})
}

func runExpO(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "O",
		Title: "Fused unpack-and-compare vs decompress-then-filter",
		Claim: "fused kernels scan packed payloads directly; the naive route pays a full materialization first",
		Headers: []string{
			"form", "op", "fused Melem/s", "naive Melem/s", "speedup", "fused allocs/op",
		},
	}

	type setup struct {
		name string
		data []int64
		sch  core.Scheme
	}
	setups := []setup{
		{"NS w=20", workload.UniformBits(cfg.N, 20, cfg.Seed), scheme.NS{}},
		{"VNS b=128", workload.SkewedMagnitude(cfg.N, 40, cfg.Seed+1), scheme.VNS{Block: 128}},
		{"FOR+NS s=1024", workload.RandomWalk(cfg.N, 12, 1<<30, cfg.Seed+2), scheme.FORComposite(1024)},
	}
	for _, su := range setups {
		form, err := su.sch.Compress(su.data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", su.name, err)
		}
		// A band around the middle of the value domain, so most
		// blocks straddle the range rather than being pruned.
		mn, mx := su.data[0], su.data[0]
		for _, v := range su.data {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		span := mx - mn
		lo := mn + span*2/5
		hi := mn + span*3/5
		n := len(su.data)

		wantCount := vec.CountRange(su.data, lo, hi)
		wantRows := vec.SelectRange(su.data, lo, hi)

		// COUNT: fused kernel over packed words vs decompress + scan.
		fusedCountT, err := timeBest(cfg.Reps, func() error {
			got, err := query.CountRange(form, lo, hi)
			if err != nil {
				return err
			}
			if got != wantCount {
				return fmt.Errorf("fused count %d != %d", got, wantCount)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", su.name, err)
		}
		naiveCountT, err := timeBest(cfg.Reps, func() error {
			col, err := core.Decompress(form)
			if err != nil {
				return err
			}
			if vec.CountRange(col, lo, hi) != wantCount {
				return fmt.Errorf("naive count mismatch")
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		countAllocs, err := allocsPerRun(10, func() error {
			_, err := query.CountRange(form, lo, hi)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(su.name, "count",
			melems(n, fusedCountT), melems(n, naiveCountT),
			f2(naiveCountT.Seconds()/fusedCountT.Seconds()),
			fmt.Sprintf("%.1f", countAllocs))
		t.AddMetric(su.name+"/count/fused", n, fusedCountT, countAllocs)
		t.AddMetric(su.name+"/count/naive", n, naiveCountT, -1)

		// SELECT: fused kernels emitting 64-bit match masks into a
		// reused bitmap vs decompress + row-list filter.
		bm := sel.New(n)
		fusedSelT, err := timeBest(cfg.Reps, func() error {
			bm.Reset(n)
			return query.SelectRangeSel(form, lo, hi, bm, 0)
		})
		if err != nil {
			return nil, err
		}
		if !vec.Equal(bm.Rows(), wantRows) {
			return nil, fmt.Errorf("%s: fused selection differs from scan", su.name)
		}
		naiveSelT, err := timeBest(cfg.Reps, func() error {
			col, err := core.Decompress(form)
			if err != nil {
				return err
			}
			if len(vec.SelectRange(col, lo, hi)) != len(wantRows) {
				return fmt.Errorf("naive select mismatch")
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		selAllocs, err := allocsPerRun(10, func() error {
			bm.Reset(n)
			return query.SelectRangeSel(form, lo, hi, bm, 0)
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(su.name, "select",
			melems(n, fusedSelT), melems(n, naiveSelT),
			f2(naiveSelT.Seconds()/fusedSelT.Seconds()),
			fmt.Sprintf("%.1f", selAllocs))
		t.AddMetric(su.name+"/select/fused", n, fusedSelT, selAllocs)
		t.AddMetric(su.name+"/select/naive", n, naiveSelT, -1)
	}
	t.Notes = append(t.Notes,
		"selection band is the middle fifth of each value domain: blocks straddle it, so pruning alone cannot win",
		"fused select fills a reused bitmap selection; naive select materializes the column and an []int64 row list",
		"allocs/op is steady-state (pools warm); -1 marks unmeasured naive routes, which allocate the full column per op",
		fmt.Sprintf("n = %d, reps = %d (best kept)", cfg.N, cfg.Reps),
	)
	return t, nil
}
