package bench

import (
	"fmt"
	"strings"
	"testing"
)

// TestAllExperimentsRunSmall runs every registered experiment at a
// reduced scale and sanity-checks the produced tables. This is the
// integration test of the whole stack: workloads → schemes → algebra
// → queries → measurement.
func TestAllExperimentsRunSmall(t *testing.T) {
	cfg := Config{N: 1 << 14, Seed: 7, Reps: 1}
	exps := All()
	if len(exps) != 23 {
		t.Fatalf("registered %d experiments, want 23 (A..W)", len(exps))
	}
	for _, e := range exps {
		e := e
		t.Run("EXP-"+e.ID, func(t *testing.T) {
			table, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if table.ID != e.ID {
				t.Fatalf("table ID %q != experiment ID %q", table.ID, e.ID)
			}
			if len(table.Rows) == 0 {
				t.Fatal("empty table")
			}
			for _, row := range table.Rows {
				if len(row) != len(table.Headers) {
					t.Fatalf("row width %d != header width %d", len(row), len(table.Headers))
				}
			}
			out := table.Render()
			if !strings.Contains(out, "EXP-"+e.ID) || !strings.Contains(out, "Claim:") {
				t.Fatalf("render missing banner:\n%s", out)
			}
			// No experiment may report a violated identity or missed
			// interval.
			if strings.Contains(out, "VIOLATED") || strings.Contains(out, " NO\n") {
				t.Fatalf("experiment reports violated invariant:\n%s", out)
			}
		})
	}
}

func TestExperimentIDsAreOrdered(t *testing.T) {
	exps := All()
	want := []string{"A", "B", "C", "D", "E", "F", "G", "H", "I", "J", "K", "L", "M", "N", "O", "P", "Q", "R", "S", "T", "U", "V", "W"}
	if len(exps) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(exps), len(want))
	}
	for i, e := range exps {
		if e.ID != want[i] {
			t.Fatalf("experiment %d = %q, want %q", i, e.ID, want[i])
		}
	}
	if _, ok := ByID("A"); !ok {
		t.Fatal("ByID(A) missing")
	}
	if _, ok := ByID("Z"); ok {
		t.Fatal("ByID(Z) should not exist")
	}
}

func TestExpectedShapes(t *testing.T) {
	// EXP-A at a moderate size: the composite must beat every single
	// scheme at run length 256 clearly even at this reduced scale
	// (the full-scale ≥2× gap is recorded in EXPERIMENTS.md).
	cfg := Config{N: 1 << 16, Seed: 3, Reps: 1}
	table, err := runExpA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range table.Rows {
		if row[0] == "256" && strings.HasPrefix(row[1], "rle(delta+vns)") {
			found = true
			var gain float64
			if _, err := sscan(row[4], &gain); err != nil {
				t.Fatalf("parse gain %q: %v", row[4], err)
			}
			if gain < 1.5 {
				t.Fatalf("composite gain %.2f < 1.5 at run length 256", gain)
			}
		}
	}
	if !found {
		t.Fatal("composite row missing")
	}
}

// sscan parses a float cell.
func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}
