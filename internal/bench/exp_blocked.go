package bench

import (
	"fmt"
	"runtime"

	"lwcomp/internal/blocked"
	"lwcomp/internal/vec"
	"lwcomp/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "N",
		Title: "Blocked columns: per-block re-composition, parallel encode, block skipping",
		Claim: `the paper's decomposition thesis applied at storage granularity: re-composing a different composite per block compresses mixed columns better, block encode parallelizes, and [min,max] block stats let range queries skip data entirely`,
		Run:   runExpN,
	})
}

func runExpN(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "N",
		Title: "Blocked columns: per-block re-composition, parallel encode, block skipping",
		Claim: "per-block scheme choice + stats-pruned queries on a mixed-structure column",
		Headers: []string{
			"configuration", "blocks", "ratio", "encode ms", "select ms", "blocks read",
		},
	}

	// A mixed column: a run-heavy dates region, then a noisy region,
	// then a sorted region — no single scheme fits all three.
	third := cfg.N / 3
	data := append(workload.OrderShipDates(third, 256, 730120, cfg.Seed),
		workload.UniformBits(third, 40, cfg.Seed+1)...)
	data = append(data, workload.Sorted(cfg.N-2*third, 1<<40, cfg.Seed+2)...)
	raw := len(data) * 8

	// The selection targets the sorted tail: blocked stats should
	// skip everything else.
	lo := data[len(data)-third/2]
	hi := data[len(data)-third/4]
	if lo > hi {
		lo, hi = hi, lo
	}

	configs := []struct {
		name string
		opt  blocked.EncodeOptions
	}{
		{"whole column (1 block)", blocked.EncodeOptions{}},
		{"blocked 64Ki, 1 worker", blocked.EncodeOptions{BlockSize: 1 << 16, Parallelism: 1}},
		{"blocked 64Ki, 4 workers", blocked.EncodeOptions{BlockSize: 1 << 16, Parallelism: 4}},
		{fmt.Sprintf("blocked 64Ki, %d workers", runtime.GOMAXPROCS(0)),
			blocked.EncodeOptions{BlockSize: 1 << 16}},
	}
	var want []int64
	for _, c := range configs {
		var col *blocked.Column
		encDur, err := timeBest(cfg.Reps, func() error {
			var err error
			col, err = blocked.Encode(data, c.opt)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		back, err := col.Decompress()
		if err != nil {
			return nil, err
		}
		if !vec.Equal(back, data) {
			return nil, fmt.Errorf("%s: lossy", c.name)
		}
		var rows []int64
		selDur, err := timeBest(cfg.Reps, func() error {
			var err error
			rows, err = col.SelectRange(lo, hi)
			return err
		})
		if err != nil {
			return nil, err
		}
		if want == nil {
			want = rows
		} else if !vec.Equal(rows, want) {
			return nil, fmt.Errorf("%s: SelectRange diverges from single-block result", c.name)
		}
		selAllocs, err := allocsPerRun(5, func() error {
			bm, err := col.SelectRangeSel(lo, hi)
			if err != nil {
				return err
			}
			bm.Release()
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.AddMetric(c.name+"/encode", len(data), encDur, -1)
		t.AddMetric(c.name+"/select", len(data), selDur, selAllocs)
		skipped, whole, consulted := col.SkipStats(lo, hi)
		t.AddRow(
			c.name,
			fmt.Sprintf("%d", col.NumBlocks()),
			ratio(raw, int(col.EncodedBits()/8)),
			fmt.Sprintf("%.1f", encDur.Seconds()*1e3),
			fmt.Sprintf("%.2f", selDur.Seconds()*1e3),
			fmt.Sprintf("%d/%d (skip %d)", whole+consulted, col.NumBlocks(), skipped),
		)
	}
	t.Notes = append(t.Notes,
		"mixed column: 1/3 run-heavy dates + 1/3 40-bit noise + 1/3 sorted; the selection hits only the sorted tail",
		"'blocks read' counts blocks emitted whole or consulted; skipped blocks are never decoded",
		fmt.Sprintf("n = %d, reps = %d (best kept)", len(data), cfg.Reps),
	)
	return t, nil
}
