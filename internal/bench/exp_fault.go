package bench

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"lwcomp/internal/blocked"
	"lwcomp/internal/faults"
	"lwcomp/internal/server"
	"lwcomp/internal/storage"
	"lwcomp/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "T",
		Title: "Fault tolerance: transient-fault absorption, quarantine + degraded scans, panic containment, crash-safe writes",
		Claim: `under 1% injected transient read faults a retrying lwcd serves a 200-client herd with zero client-visible errors — a corrupted block quarantines once and degrades scans by exactly its row range (or fails fast by default), a panicking scan worker costs one 500 and nothing else, and an aborted write leaves no torn container behind`,
		Run:   runExpT,
	})
}

// faultMetrics mirrors the fault-facing slice of /metrics.
type faultMetrics struct {
	Queries struct {
		Total  int64 `json:"total"`
		Errors int64 `json:"errors"`
	} `json:"queries"`
	PanicsRecovered int64 `json:"panics_recovered"`
	Tables          map[string]struct {
		BlocksQuarantined int   `json:"blocks_quarantined"`
		ReadRetries       int64 `json:"read_retries"`
		ReadGiveups       int64 `json:"read_giveups"`
	} `json:"tables"`
}

// scrapeFaultMetrics fetches and decodes the fault counters.
func scrapeFaultMetrics(url string) (faultMetrics, error) {
	var m faultMetrics
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	return m, json.NewDecoder(resp.Body).Decode(&m)
}

// faultQueryResult is the response slice EXP-T asserts on.
type faultQueryResult struct {
	Matched  int64            `json:"matched"`
	Sums     map[string]int64 `json:"sums"`
	Degraded []struct {
		Column   string `json:"column"`
		Block    int    `json:"block"`
		RowStart int64  `json:"row_start"`
		RowCount int    `json:"row_count"`
		Reason   string `json:"reason"`
	} `json:"degraded"`
}

// postOnce posts one query and decodes the body (whatever the status).
func postOnce(url string, body []byte) (int, faultQueryResult, error) {
	var out faultQueryResult
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, out, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, out, err
	}
	json.Unmarshal(data, &out) // error bodies are not query results; ignore
	return resp.StatusCode, out, nil
}

// writeFaultTable writes an lwcd-mountable orders table (amount,
// status; one single-column container per column) and returns the
// generated columns.
func writeFaultTable(dir string, n, blockSize int, seed int64) (amount, status []int64, err error) {
	amount = workload.RandomWalk(n, 12, 1<<30, seed)
	status = workload.LowCardinality(n, 8, seed+1)
	for name, data := range map[string][]int64{"amount": amount, "status": status} {
		col, err := blocked.Encode(data, blocked.EncodeOptions{BlockSize: blockSize})
		if err != nil {
			return nil, nil, err
		}
		path := filepath.Join(dir, "orders."+name+".lwc")
		werr := storage.AtomicWriteFile(path, func(w io.Writer) error {
			return storage.WriteContainerV3(w, []storage.BlockedColumn{{Name: "c", Col: col}})
		})
		if werr != nil {
			return nil, nil, werr
		}
	}
	return amount, status, nil
}

// corruptPayloadByte flips one byte inside the given block's payload
// of the container's only column — persistent on-disk bit rot.
func corruptPayloadByte(path string, block int) error {
	cf, err := storage.OpenContainerFile(path, storage.OpenOptions{CacheBytes: -1})
	if err != nil {
		return err
	}
	exts := cf.Extents(0)
	cf.Close()
	if exts == nil || block >= len(exts) {
		return fmt.Errorf("no extent for block %d of %s", block, path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	indexLen := binary.LittleEndian.Uint64(data[6:14])
	off := 14 + int64(indexLen) + exts[block].Offset
	data[off] ^= 0xFF
	return os.WriteFile(path, data, 0o644)
}

func runExpT(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "T",
		Title: "Fault tolerance: transient-fault absorption, quarantine + degraded scans, panic containment, crash-safe writes",
		Claim: "1% transient faults: zero client-visible errors; corrupted block: fail-fast 500 or exact-manifest degraded scan; worker panic: one 500, daemon lives; aborted write: no torn file",
		Headers: []string{
			"scenario", "queries", "ok", "5xx", "observation",
		},
	}

	// Scenario 1: 1% of read offsets are transiently fault-prone (each
	// fails up to 2 consecutive reads); the server retries up to 4
	// times. The 200-client herd must see zero errors. The injection is
	// seeded; if a seed happens to miss every offset the containers
	// actually read, bump it — the criterion needs at least one
	// absorbed fault to be a statement about retries, not about luck.
	dir, err := os.MkdirTemp("", "lwcomp-expt-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	amount, status, err := writeFaultTable(dir, cfg.N, 1<<12, cfg.Seed)
	if err != nil {
		return nil, err
	}
	where := fmt.Sprintf("amount >= %d and status = %d", amount[cfg.N/2], status[0])
	sumBody, _ := json.Marshal(map[string]any{
		"table": "orders", "where": where, "op": "sum", "columns": []string{"amount"}})

	const perClient = 3
	var (
		okN, failN, rejN int64
		retries, giveups int64
		elapsed          time.Duration
		injected         int64
	)
	for attempt := 0; ; attempt++ {
		wrap, last := faults.Wrap(faults.Config{
			Seed:          cfg.Seed + int64(attempt),
			TransientProb: 0.01,
		})
		srv, err := server.New(server.Config{
			Dir: dir, MaxQueue: 100000, ReadRetries: 4, FaultInjection: wrap,
		})
		if err != nil {
			return nil, err
		}
		ts := httptest.NewServer(srv.Handler())
		start := time.Now()
		okN, rejN, failN, _ = fireClients(ts.URL, sumBody, expSClients, perClient)
		elapsed = time.Since(start)
		m, merr := scrapeFaultMetrics(ts.URL)
		ts.Close()
		srv.Close()
		if merr != nil {
			return nil, merr
		}
		retries, giveups = 0, 0
		for _, tb := range m.Tables {
			retries += tb.ReadRetries
			giveups += tb.ReadGiveups
		}
		if w := last(); w != nil {
			injected = w.InjectedTransient()
		}
		if failN > 0 || rejN > 0 {
			return nil, fmt.Errorf("EXP-T transient: %d failures, %d rejections under injected faults — retries must absorb all of them", failN, rejN)
		}
		if giveups > 0 {
			return nil, fmt.Errorf("EXP-T transient: %d read giveups with retry budget 4 > max 2 consecutive faults", giveups)
		}
		if retries > 0 {
			break
		}
		// At reduced -n the containers read only a handful of distinct
		// offsets, so a given seed's 1% coverage may miss all of them;
		// walking seeds keeps the run deterministic without raising the
		// fault rate the claim names.
		if attempt >= 63 {
			return nil, fmt.Errorf("EXP-T transient: no injected fault landed on a read offset in 64 seeds")
		}
	}
	t.AddRow("1% transient faults, retries=4", itoa(int(okN)), itoa(int(okN)), "0",
		fmt.Sprintf("read_retries=%d giveups=0", retries))
	t.AddMetric("fault/transient absorbed", cfg.N, elapsed/time.Duration(okN), 0)

	// Scenario 2: one corrupted payload block. Default mode fails fast
	// with a 500 (and quarantines the block); degraded mode answers
	// with the exact omitted row range; the rest of the table — and the
	// process — keep serving; lwc verify flags the file.
	dir2, err := os.MkdirTemp("", "lwcomp-expt2-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir2)
	bs := 1 << 12
	amount2, status2, err := writeFaultTable(dir2, cfg.N, bs, cfg.Seed+100)
	if err != nil {
		return nil, err
	}
	blocks := (cfg.N + bs - 1) / bs
	bi := blocks / 2
	amtPath := filepath.Join(dir2, "orders.amount.lwc")
	if err := corruptPayloadByte(amtPath, bi); err != nil {
		return nil, err
	}
	srv2, err := server.New(server.Config{Dir: dir2, MaxQueue: 1000})
	if err != nil {
		return nil, err
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer srv2.Close()
	defer ts2.Close()

	allBody, _ := json.Marshal(map[string]any{
		"table": "orders", "where": "status >= 0", "op": "sum", "columns": []string{"amount"}})
	st, _, err := postOnce(ts2.URL, allBody)
	if err != nil {
		return nil, err
	}
	if st != http.StatusInternalServerError {
		return nil, fmt.Errorf("EXP-T corrupt: default-mode sum over a corrupted block = HTTP %d, want 500", st)
	}
	t.AddRow("corrupt block, default mode", "1", "0", "1", "fail-fast 500, block quarantined")

	degBody, _ := json.Marshal(map[string]any{
		"table": "orders", "where": "status >= 0", "op": "sum",
		"columns": []string{"amount"}, "allow_degraded": true})
	st, res, err := postOnce(ts2.URL, degBody)
	if err != nil {
		return nil, err
	}
	if st != http.StatusOK {
		return nil, fmt.Errorf("EXP-T corrupt: degraded sum = HTTP %d, want 200", st)
	}
	var want int64
	lo, hi := bi*bs, (bi+1)*bs
	if hi > cfg.N {
		hi = cfg.N
	}
	for i, v := range amount2 {
		if i < lo || i >= hi {
			want += v
		}
	}
	if res.Sums["amount"] != want {
		return nil, fmt.Errorf("EXP-T corrupt: degraded sum = %d, want exactly %d (all rows minus block %d)", res.Sums["amount"], want, bi)
	}
	if len(res.Degraded) != 1 || res.Degraded[0].Column != "amount" ||
		res.Degraded[0].Block != bi || res.Degraded[0].RowStart != int64(lo) ||
		res.Degraded[0].RowCount != hi-lo || res.Degraded[0].Reason == "" {
		return nil, fmt.Errorf("EXP-T corrupt: degradation manifest %+v, want exactly {amount, block %d, rows [%d,%d)}", res.Degraded, bi, lo, hi)
	}
	// The untouched column still answers exactly, on the same process.
	cntBody, _ := json.Marshal(map[string]any{
		"table": "orders", "where": fmt.Sprintf("status = %d", status2[0]), "op": "count"})
	st, cres, err := postOnce(ts2.URL, cntBody)
	if err != nil {
		return nil, err
	}
	var wantCnt int64
	for _, v := range status2 {
		if v == status2[0] {
			wantCnt++
		}
	}
	if st != http.StatusOK || cres.Matched != wantCnt {
		return nil, fmt.Errorf("EXP-T corrupt: healthy-column count after degradation = HTTP %d matched %d, want 200 and %d", st, cres.Matched, wantCnt)
	}
	m2, err := scrapeFaultMetrics(ts2.URL)
	if err != nil {
		return nil, err
	}
	if m2.Tables["orders"].BlocksQuarantined != 1 {
		return nil, fmt.Errorf("EXP-T corrupt: blocks_quarantined = %d, want 1", m2.Tables["orders"].BlocksQuarantined)
	}
	rep, err := storage.VerifyFile(amtPath)
	if err != nil {
		return nil, err
	}
	if rep.OK() {
		return nil, fmt.Errorf("EXP-T corrupt: lwc verify passed a corrupted container")
	}
	t.AddRow("corrupt block, degraded mode", "2", "2", "0",
		fmt.Sprintf("manifest={amount, block %d, rows [%d,%d)}, sums exact", bi, lo, hi))

	// Scenario 3: a panicking scan worker. The crash barrier converts
	// it to one 500; restoring the source heals the table completely.
	srv3, err := server.New(server.Config{Dir: dir, MaxQueue: 1000})
	if err != nil {
		return nil, err
	}
	ts3 := httptest.NewServer(srv3.Handler())
	defer srv3.Close()
	defer ts3.Close()
	tbl, ok := srv3.Table("orders")
	if !ok {
		return nil, fmt.Errorf("EXP-T panic: orders not mounted")
	}
	col, err := tbl.Column("amount")
	if err != nil {
		return nil, err
	}
	panics := make(map[int]bool, len(col.Blocks))
	for i := range col.Blocks {
		panics[i] = true
	}
	orig := col.Source
	col.Source = faults.NewBlockSource(orig, nil, panics)
	st, _, err = postOnce(ts3.URL, allBody)
	if err != nil {
		return nil, err
	}
	if st != http.StatusInternalServerError {
		return nil, fmt.Errorf("EXP-T panic: query over panicking source = HTTP %d, want 500", st)
	}
	m3, err := scrapeFaultMetrics(ts3.URL)
	if err != nil {
		return nil, err
	}
	if m3.PanicsRecovered < 1 {
		return nil, fmt.Errorf("EXP-T panic: panics_recovered = %d after an injected panic", m3.PanicsRecovered)
	}
	col.Source = orig
	st, res3, err := postOnce(ts3.URL, allBody)
	if err != nil {
		return nil, err
	}
	var total int64
	for _, v := range amount {
		total += v
	}
	if st != http.StatusOK || res3.Sums["amount"] != total {
		return nil, fmt.Errorf("EXP-T panic: healed query = HTTP %d sum %d, want 200 and %d", st, res3.Sums["amount"], total)
	}
	t.AddRow("injected worker panic", "2", "1", "1",
		fmt.Sprintf("one 500, panics_recovered=%d, healed query exact", m3.PanicsRecovered))

	// Scenario 4: a write that dies mid-stream must leave neither a
	// torn container under the final name nor temp-file litter.
	tornPath := filepath.Join(dir2, "torn.lwc")
	boom := errors.New("simulated crash mid-write")
	werr := storage.AtomicWriteFile(tornPath, func(w io.Writer) error {
		w.Write(make([]byte, 1<<16))
		return boom
	})
	if !errors.Is(werr, boom) {
		return nil, fmt.Errorf("EXP-T atomic: aborted write returned %v", werr)
	}
	if _, err := os.Stat(tornPath); !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("EXP-T atomic: aborted write left a file at the final path")
	}
	entries, err := os.ReadDir(dir2)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if m, _ := filepath.Match(".*.tmp-*", e.Name()); m {
			return nil, fmt.Errorf("EXP-T atomic: leaked temp file %s", e.Name())
		}
	}
	t.AddRow("aborted atomic write", "-", "-", "-", "no file at final path, no temp litter")

	t.Metrics = append(t.Metrics,
		Metric{Name: "fault/reads retried then absorbed", AllocsPerOp: float64(retries)},
		Metric{Name: "fault/transient faults injected", AllocsPerOp: float64(injected)})
	t.Notes = append(t.Notes,
		fmt.Sprintf("transient row: %d clients x %d sum queries; every injected fault (prob 0.01/offset, <=2 consecutive) absorbed by the 4-retry budget — no 429s, no 5xx, no giveups", expSClients, perClient),
		fmt.Sprintf("corrupt row: one flipped payload byte in block %d of orders.amount; default queries fail fast with 500 + quarantine, allow_degraded answers with the omitted range and exact sums over surviving rows; storage.VerifyFile flags the file", bi),
		"counters ride in allocs_per_op (the metric schema has no dedicated slot), as EXP-S does for its 429 fraction")
	return t, nil
}
