package bench

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"lwcomp/internal/blocked"
	"lwcomp/internal/server"
	"lwcomp/internal/storage"
	"lwcomp/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "W",
		Title: "Self-healing storage: scrub, quarantine, salvage, re-admit",
		Claim: `a corrupted generation swapped under a live mount is detected and quarantined by one scrub sweep while concurrent clients see zero non-degraded errors; a healing sweep salvages the container back to the truthful writer's exact bytes, reloads, and clears the quarantine ledger — after which scans are exact again with zero omissions`,
		Run:   runExpW,
	})
}

// expWMetrics is the slice of /metrics EXP-W records: query outcomes
// plus the scrub section (full shape in internal/server).
type expWMetrics struct {
	Queries struct {
		Total    int64 `json:"total"`
		Rejected int64 `json:"rejected"`
		Timeouts int64 `json:"timeouts"`
		Errors   int64 `json:"errors"`
	} `json:"queries"`
	Scrub struct {
		Containers   int64   `json:"containers_scanned"`
		Blocks       int64   `json:"blocks_scanned"`
		Errors       int64   `json:"errors_found"`
		Bytes        int64   `json:"bytes_scanned"`
		Quarantined  int64   `json:"quarantined"`
		Healed       int64   `json:"healed"`
		Unrepairable int64   `json:"unrepairable"`
		Sweeps       int64   `json:"sweeps"`
		LastAgeS     float64 `json:"last_sweep_age_s"`
	} `json:"scrub"`
}

// expWSweep is the /-/scrub response slice the experiment gates on.
type expWSweep struct {
	Containers        int  `json:"containers"`
	Errors            int  `json:"errors"`
	Quarantined       int  `json:"quarantined"`
	Healed            int  `json:"healed"`
	Unrepairable      int  `json:"unrepairable"`
	TombstonedBlocks  int  `json:"tombstoned_blocks"`
	QuarantineCleared int  `json:"quarantine_cleared"`
	Reloaded          bool `json:"reloaded"`
	Aborted           bool `json:"aborted"`
}

// expWAnswer is the semantic content of a sum query: everything in the
// response except server-side timing.
type expWAnswer struct {
	Matched  int64            `json:"matched"`
	Sums     map[string]int64 `json:"sums"`
	Degraded []any            `json:"degraded"`
}

func expWQuery(url string, body []byte) (int, expWAnswer, error) {
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, expWAnswer{}, err
	}
	defer resp.Body.Close()
	var ans expWAnswer
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil {
			return 0, expWAnswer{}, err
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, ans, nil
}

func runExpW(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "W",
		Title: "Self-healing storage: scrub, quarantine, salvage, re-admit",
		Claim: "corrupt a mounted generation, scrub-quarantine it under live traffic with zero non-degraded client errors, salvage it back to the original bytes, and serve exact scans again",
		Headers: []string{
			"stage", "errors", "quarantined", "healed", "exact sum ok",
		},
	}

	// Two columns of one table: amount (the corruption target) and
	// status (what the client herd scans throughout).
	dir, err := os.MkdirTemp("", "lwcomp-expw-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	amount := workload.RandomWalk(cfg.N, 50, 1_000_000, cfg.Seed)
	status := workload.LowCardinality(cfg.N, 8, cfg.Seed+2)
	writeCol := func(name string, data []int64, lie bool) error {
		col, err := blocked.Encode(data, blocked.EncodeOptions{BlockSize: 1 << 14})
		if err != nil {
			return err
		}
		if lie {
			// The truthful payloads with falsified index stats: CRCs all
			// self-consistent, so only a scrub's stats re-derivation —
			// not an open, not a read — can catch it. Lie on the last
			// block so reduced-scale runs (one block) still corrupt.
			bi := len(col.Blocks) - 1
			if bi > 2 {
				bi = 2
			}
			col.Blocks[bi].Min -= 11
		}
		return storage.AtomicWriteFile(filepath.Join(dir, "orders."+name+".lwc"), func(w io.Writer) error {
			return storage.WriteContainerV3(w, []storage.BlockedColumn{{Name: "c", Col: col}})
		})
	}
	if err := writeCol("amount", amount, false); err != nil {
		return nil, err
	}
	if err := writeCol("status", status, false); err != nil {
		return nil, err
	}
	goodBytes, err := os.ReadFile(filepath.Join(dir, "orders.amount.lwc"))
	if err != nil {
		return nil, err
	}
	goodSum := sha256.Sum256(goodBytes)

	srv, err := server.New(server.Config{
		Dir:           dir,
		MaxConcurrent: 64,
		MaxQueue:      100000,
		// The scrubber is driven over HTTP for a deterministic two-phase
		// run; unthrottled, since the experiment measures correctness
		// and sweep latency, not bandwidth shaping.
		ScrubRateBytes: -1,
	})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	// The baseline answer the healed generation must reproduce.
	sumBody, _ := json.Marshal(map[string]any{
		"table": "orders", "op": "sum", "columns": []string{"amount"}})
	code, baseline, err := expWQuery(ts.URL, sumBody)
	if err != nil || code != http.StatusOK {
		return nil, fmt.Errorf("EXP-W: baseline query: %d %v", code, err)
	}

	// Corrupt the live mount: swap a lying generation over the mounted
	// file. The mounted descriptor keeps serving the old inode; the
	// rot is what the next scrub reads from disk.
	if err := writeCol("amount", amount, true); err != nil {
		return nil, err
	}

	// The client herd: 200 concurrent status-only scans running through
	// both sweeps. None of them touch the corrupted column, and the
	// gate is zero non-degraded errors among them.
	statusBody, _ := json.Marshal(map[string]any{
		"table": "orders", "where": "status = 3", "op": "count"})
	stop := make(chan struct{})
	var okN, badN atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 200; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, _, err := expWQuery(ts.URL, statusBody)
				if err != nil || code != http.StatusOK {
					badN.Add(1)
					return
				}
				okN.Add(1)
			}
		}()
	}

	postSweep := func(q string) (expWSweep, error) {
		var sw expWSweep
		resp, err := http.Post(ts.URL+"/-/scrub"+q, "application/json", nil)
		if err != nil {
			return sw, err
		}
		defer resp.Body.Close()
		return sw, json.NewDecoder(resp.Body).Decode(&sw)
	}

	// Phase 1: detection. One sweep finds the lie and quarantines the
	// block on the mounted column before any query trips over it.
	detectStart := time.Now()
	det, err := postSweep("?heal=0")
	detectWall := time.Since(detectStart)
	if err != nil {
		close(stop)
		wg.Wait()
		return nil, err
	}

	// Phase 2: healing. The salvage preserves every payload byte, re-
	// derives the lied-about stats, verifies, swaps, reloads.
	healStart := time.Now()
	heal, err := postSweep("?heal=1")
	healWall := time.Since(healStart)
	close(stop)
	wg.Wait()
	if err != nil {
		return nil, err
	}

	// Post-heal: the container must be byte-identical to the original
	// generation, and the exact (non-degraded) scan must reproduce the
	// baseline with zero omissions.
	healedBytes, err := os.ReadFile(filepath.Join(dir, "orders.amount.lwc"))
	if err != nil {
		return nil, err
	}
	code, after, err := expWQuery(ts.URL, sumBody)
	if err != nil || code != http.StatusOK {
		return nil, fmt.Errorf("EXP-W: post-heal query: %d %v", code, err)
	}
	var m expWMetrics
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		return nil, err
	}
	err = json.NewDecoder(mresp.Body).Decode(&m)
	mresp.Body.Close()
	if err != nil {
		return nil, err
	}

	// The acceptance gates.
	if det.Errors == 0 || det.Quarantined == 0 || det.Healed != 0 {
		return nil, fmt.Errorf("EXP-W: detection sweep missed the corruption: %+v", det)
	}
	if heal.Healed != 1 || !heal.Reloaded || heal.QuarantineCleared == 0 || heal.Unrepairable != 0 {
		return nil, fmt.Errorf("EXP-W: healing sweep did not recover: %+v", heal)
	}
	if bad := badN.Load(); bad > 0 {
		return nil, fmt.Errorf("EXP-W: %d of the concurrent clients saw non-degraded errors", bad)
	}
	if sha256.Sum256(healedBytes) != goodSum {
		return nil, fmt.Errorf("EXP-W: healed container differs from the pre-corruption bytes")
	}
	if after.Matched != baseline.Matched || after.Sums["amount"] != baseline.Sums["amount"] ||
		len(after.Degraded) != 0 {
		return nil, fmt.Errorf("EXP-W: post-heal scan differs from baseline: %+v vs %+v", after, baseline)
	}
	if m.Scrub.Healed != 1 || m.Scrub.Errors == 0 || m.Scrub.Unrepairable != 0 {
		return nil, fmt.Errorf("EXP-W: scrub metrics inconsistent: %+v", m.Scrub)
	}

	exact := func(ok bool) string {
		if ok {
			return "yes"
		}
		return "no"
	}
	t.AddRow("baseline", "0", "0", "0", "yes")
	t.AddRow("corrupt+detect", itoa(det.Errors), itoa(det.Quarantined), "0", "n/a (quarantined)")
	t.AddRow("heal+reload", itoa(heal.Errors), itoa(heal.QuarantineCleared), itoa(heal.Healed),
		exact(after.Sums["amount"] == baseline.Sums["amount"]))

	t.Metrics = append(t.Metrics,
		Metric{Name: "scrub/detect sweep", NsPerOp: float64(detectWall.Nanoseconds()), MBPerS: float64(m.Scrub.Bytes) / 1e6 / detectWall.Seconds()},
		Metric{Name: "scrub/heal sweep", NsPerOp: float64(healWall.Nanoseconds())},
		Metric{Name: "scrub/clients during sweeps", AllocsPerOp: float64(okN.Load())},
	)
	t.Notes = append(t.Notes,
		fmt.Sprintf("detection swept %d container(s), %d block(s), %d bytes in %.0f ms; healing swept, salvaged and reloaded in %.0f ms",
			det.Containers, m.Scrub.Blocks, m.Scrub.Bytes, detectWall.Seconds()*1e3, healWall.Seconds()*1e3),
		fmt.Sprintf("%d status scans completed across both sweeps with zero non-degraded errors; %d quarantine entr(ies) cleared by the healed generation's swap",
			okN.Load(), heal.QuarantineCleared),
		"healed container verified byte-identical (sha256) to the pre-corruption generation; exact post-heal scan matches the baseline with zero omissions",
	)
	return t, nil
}
