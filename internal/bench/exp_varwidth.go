package bench

import (
	"fmt"

	"lwcomp/internal/core"
	"lwcomp/internal/scheme"
	"lwcomp/internal/storage"
	"lwcomp/internal/vec"
	"lwcomp/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "G",
		Title: "Bit-metric variable-width coding vs fixed-width NS",
		Claim: `§II-B: "Let d(x, y) = ⌈log2|x−y|+1⌉ … we could use a variable-width encoding for the offsets column".`,
		Run:   runExpG,
	})
}

func runExpG(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "G",
		Title: "Bit-metric variable-width coding vs fixed-width NS",
		Claim: "when element widths are skewed, per-block and per-element widths beat the single max width; decode cost rises with granularity",
		Headers: []string{
			"codec", "granularity", "bytes", "ratio", "decomp Melem/s",
		},
	}
	data := workload.SkewedMagnitude(cfg.N, 40, cfg.Seed)
	raw := len(data) * 8

	codecs := []struct {
		name, gran string
		s          core.Scheme
	}{
		{"ns", "column (max width)", scheme.NS{}},
		{"vns b=1024", "1024-elem blocks", scheme.VNS{Block: 1024}},
		{"vns b=128", "128-elem blocks", scheme.VNS{Block: 128}},
		{"vns b=32", "32-elem blocks", scheme.VNS{Block: 32}},
		{"varint", "element (7-bit groups)", scheme.Varint{}},
		{"elias-delta", "element (bit exact)", scheme.Elias{}},
	}
	for _, c := range codecs {
		f, err := c.s.Compress(data)
		if err != nil {
			return nil, err
		}
		sz, err := storage.EncodedSize(f)
		if err != nil {
			return nil, err
		}
		d, err := timeBest(cfg.Reps, func() error {
			got, err := core.Decompress(f)
			if err != nil {
				return err
			}
			if !vec.Equal(got, data) {
				return fmt.Errorf("%s: lossy roundtrip", c.name)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(c.name, c.gran, fmt.Sprintf("%d", sz), ratio(raw, sz), melems(len(data), d))
	}
	t.Notes = append(t.Notes,
		"finer width granularity tracks the bit metric more closely (smaller) but decodes more slowly — the paper's ratio/ease axis again",
		fmt.Sprintf("geometric width distribution, max 40 bits, n = %d", cfg.N),
	)
	return t, nil
}
