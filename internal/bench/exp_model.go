package bench

import (
	"fmt"

	"lwcomp/internal/core"
	"lwcomp/internal/scheme"
	"lwcomp/internal/storage"
	"lwcomp/internal/vec"
	"lwcomp/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E",
		Title: "FOR ≡ (STEPFUNCTION + NS)",
		Claim: `§II-B: "FOR captures all columns which are L∞-metric-close to the evaluation of a step function (with the distance determined by the allowed width of the offsets column)".`,
		Run:   runExpE,
	})
	register(Experiment{
		ID:    "H",
		Title: "Piecewise-linear models shrink residual widths on trends",
		Claim: `§II-B: "It is appealing to consider piecewise-linear functions, i.e. keep an offset from a diagonal line at some slope rather than the offset from a horizontal step".`,
		Run:   runExpH,
	})
}

func runExpE(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "E",
		Title: "FOR ≡ (STEPFUNCTION + NS)",
		Claim: "identity holds bit-exactly; offset width (the L∞ radius) grows with segment length",
		Headers: []string{
			"seg len", "offset bits", "bytes", "ratio", "identity",
		},
	}
	data := workload.RandomWalk(cfg.N, 15, 1<<34, cfg.Seed)
	raw := len(data) * 8
	for _, segLen := range []int{64, 256, 1024, 4096, 16384} {
		forForm, err := scheme.FORComposite(segLen).Compress(data)
		if err != nil {
			return nil, err
		}
		offsets, err := forForm.Child("offsets")
		if err != nil {
			return nil, err
		}
		width := offsets.Params["width"]

		// Identity check both directions.
		plusForm, err := scheme.DecomposeFOR(forForm)
		if err != nil {
			return nil, err
		}
		a, err := core.Decompress(plusForm)
		if err != nil {
			return nil, err
		}
		identity := "holds"
		if !vec.Equal(a, data) {
			identity = "VIOLATED"
		}
		back, err := scheme.RecomposeFOR(plusForm)
		if err != nil {
			return nil, err
		}
		encA, err := storage.EncodeForm(forForm)
		if err != nil {
			return nil, err
		}
		encB, err := storage.EncodeForm(back)
		if err != nil {
			return nil, err
		}
		if string(encA) != string(encB) {
			identity = "VIOLATED (recompose)"
		}

		sz, err := storage.EncodedSize(forForm)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%d", segLen),
			fmt.Sprintf("%d", width),
			fmt.Sprintf("%d", sz),
			ratio(raw, sz),
			identity,
		)
	}
	t.Notes = append(t.Notes,
		"offset width = max bits of v − min(segment): the L∞ distance from the fitted step function",
		"short segments: tighter model, more refs; long segments: looser model, fewer refs — the ratio optimum is interior",
		fmt.Sprintf("random walk ±15/step, n = %d", cfg.N),
	)
	return t, nil
}

func runExpH(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "H",
		Title: "Piecewise-linear models shrink residual widths on trends",
		Claim: "LINEAR+NS beats FOR+NS once a slope exists; equal when flat",
		Headers: []string{
			"slope", "step resid bits", "linear resid bits", "step ratio", "linear ratio", "linear wins",
		},
	}
	segLen := 1024
	for _, slope := range []float64{0, 0.5, 2, 8, 32} {
		data := workload.TrendNoise(cfg.N, slope, 12, cfg.Seed)
		raw := len(data) * 8

		stepForm, err := (scheme.ModelResidual{Fitter: scheme.StepFitter{SegLen: segLen}}).Compress(data)
		if err != nil {
			return nil, err
		}
		linForm, err := (scheme.ModelResidual{Fitter: scheme.LinearFitter{SegLen: segLen}}).Compress(data)
		if err != nil {
			return nil, err
		}
		for _, f := range []*core.Form{stepForm, linForm} {
			got, err := core.Decompress(f)
			if err != nil {
				return nil, err
			}
			if !vec.Equal(got, data) {
				return nil, fmt.Errorf("slope %.1f: lossy model roundtrip", slope)
			}
		}
		stepResid, err := stepForm.Child("residual")
		if err != nil {
			return nil, err
		}
		linResid, err := linForm.Child("residual")
		if err != nil {
			return nil, err
		}
		stepSz, err := storage.EncodedSize(stepForm)
		if err != nil {
			return nil, err
		}
		linSz, err := storage.EncodedSize(linForm)
		if err != nil {
			return nil, err
		}
		wins := "-"
		if linSz < stepSz {
			wins = "yes"
		}
		t.AddRow(
			fmt.Sprintf("%.1f", slope),
			fmt.Sprintf("%d", stepResid.Params["width"]),
			fmt.Sprintf("%d", linResid.Params["width"]),
			ratio(raw, stepSz),
			ratio(raw, linSz),
			wins,
		)
	}
	t.Notes = append(t.Notes,
		"step residual width grows as log2(slope·seglen); linear residual width stays at the noise amplitude",
		fmt.Sprintf("noise ±12, segment length %d, n = %d", segLen, cfg.N),
	)
	return t, nil
}
