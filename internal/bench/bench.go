package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Config controls experiment scale.
type Config struct {
	// N is the base column length (default 1<<20).
	N int
	// Seed makes every generator deterministic.
	Seed int64
	// Reps is the number of timing repetitions (best is kept).
	Reps int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N = 1 << 20
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Reps == 0 {
		c.Reps = 3
	}
	return c
}

// Table is one experiment's result.
type Table struct {
	ID      string
	Title   string
	Claim   string
	Headers []string
	Rows    [][]string
	Notes   []string
	// Metrics are the experiment's machine-readable measurements;
	// cmd/lwcbench -json serializes them so BENCH_*.json snapshots
	// can track the perf trajectory across PRs.
	Metrics []Metric
}

// Metric is one machine-readable measurement: a named operation's
// best-of-reps latency, the uncompressed-data throughput it implies,
// and its steady-state heap allocations.
type Metric struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddMetric records a measurement over n int64 elements taking d per
// operation with the given steady-state allocations.
func (t *Table) AddMetric(name string, n int, d time.Duration, allocsPerOp float64) {
	m := Metric{Name: name, NsPerOp: float64(d.Nanoseconds()), AllocsPerOp: allocsPerOp}
	if d > 0 {
		m.MBPerS = float64(n) * 8 / d.Seconds() / 1e6
	}
	t.Metrics = append(t.Metrics, m)
}

// Render formats the table as aligned ASCII.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXP-%s: %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "Claim: %s\n", t.Claim)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is a registered experiment.
type Experiment struct {
	ID    string
	Title string
	Claim string
	Run   func(cfg Config) (*Table, error)
}

var experiments []Experiment

// register adds an experiment at package init.
func register(e Experiment) {
	experiments = append(experiments, e)
}

// All returns every experiment, ordered by ID.
func All() []Experiment {
	out := append([]Experiment{}, experiments...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the experiment with the given ID (case-sensitive,
// without the "EXP-" prefix).
func ByID(id string) (Experiment, bool) {
	for _, e := range experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// allocsPerRun reports the average heap allocations per call to f,
// mirroring testing.AllocsPerRun: a warm-up call primes any pools,
// GOMAXPROCS(1) keeps unrelated goroutines from contaminating the
// mallocs delta.
func allocsPerRun(runs int, f func() error) (float64, error) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	if err := f(); err != nil {
		return 0, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		if err := f(); err != nil {
			return 0, err
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs), nil
}

// timeBest runs f reps times and returns the best wall-clock
// duration; f's error aborts timing.
func timeBest(reps int, f func() error) (time.Duration, error) {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best, nil
}

// melems formats a throughput in million elements per second.
func melems(n int, d time.Duration) string {
	if d <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1f", float64(n)/d.Seconds()/1e6)
}

// ratio formats a compression ratio.
func ratio(uncompressedBytes, compressedBytes int) string {
	if compressedBytes == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", float64(uncompressedBytes)/float64(compressedBytes))
}

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
