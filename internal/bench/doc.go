// Package bench is the experiment harness that regenerates every
// experiment table of the reproduction (EXP-A … EXP-Q; see DESIGN.md
// §2 for the experiment ↔ paper-claim index).
//
// Each experiment is a Table generator; cmd/lwcbench renders them,
// and EXPERIMENTS.md records one run. Benchmarks proper (testing.B)
// live in the repository root's bench_test.go and exercise the same
// code paths.
package bench
