package bench

import (
	"fmt"

	"lwcomp/internal/core"
	"lwcomp/internal/scheme"
	"lwcomp/internal/storage"
	"lwcomp/internal/vec"
	"lwcomp/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "C",
		Title: "RLE ≡ (ID, DELTA) ∘ RPE — the ratio-for-ease trade",
		Claim: `§II-A: partial decompression "corresponds to another compression scheme, which trades away some of the potential compression ratio of the composite scheme for ease of decompression".`,
		Run:   runExpC,
	})
}

func runExpC(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "C",
		Title: "RLE ≡ (ID, DELTA) ∘ RPE — the ratio-for-ease trade",
		Claim: "RPE is larger but decompresses faster; the identity holds bit-exactly",
		Headers: []string{
			"avg run", "scheme", "bytes", "ratio", "decomp Melem/s", "identity",
		},
	}
	for _, runLen := range []float64{4, 16, 64, 256, 1024} {
		data := workload.Runs(cfg.N, runLen, 1<<20, cfg.Seed)
		raw := len(data) * 8

		rleForm, err := scheme.RLEComposite().Compress(data)
		if err != nil {
			return nil, err
		}
		rpeForm, err := scheme.RPEComposite().Compress(data)
		if err != nil {
			return nil, err
		}

		// Machine-check the identity: decomposing the RLE form must
		// decompress identically, and recomposing must restore the
		// identical serialized bytes.
		decomposed, err := scheme.DecomposeRLE(rleForm)
		if err != nil {
			return nil, err
		}
		a, err := core.Decompress(decomposed)
		if err != nil {
			return nil, err
		}
		identity := "holds"
		if !vec.Equal(a, data) {
			identity = "VIOLATED"
		}
		recomposed, err := scheme.RecomposeRLE(decomposed)
		if err != nil {
			return nil, err
		}
		encA, err := storage.EncodeForm(rleForm)
		if err != nil {
			return nil, err
		}
		encB, err := storage.EncodeForm(recomposed)
		if err != nil {
			return nil, err
		}
		if string(encA) != string(encB) {
			identity = "VIOLATED (recompose)"
		}

		for _, e := range []struct {
			name string
			f    *core.Form
		}{
			{"rle(ns,ns)", rleForm},
			{"rpe(ns,ns)", rpeForm},
		} {
			sz, err := storage.EncodedSize(e.f)
			if err != nil {
				return nil, err
			}
			d, err := timeBest(cfg.Reps, func() error {
				got, err := core.Decompress(e.f)
				if err != nil {
					return err
				}
				if !vec.Equal(got, data) {
					return fmt.Errorf("roundtrip mismatch")
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(
				fmt.Sprintf("%.0f", runLen),
				e.name,
				fmt.Sprintf("%d", sz),
				ratio(raw, sz),
				melems(len(data), d),
				identity,
			)
		}
	}
	t.Notes = append(t.Notes,
		"rpe positions are integrated lengths: wider entries, but decompression skips Algorithm 1's first PrefixSum",
		"'identity' is machine-checked per row: decompose → equal output; recompose → identical serialized bytes",
		fmt.Sprintf("n = %d", cfg.N),
	)
	return t, nil
}
