package bench

import (
	"fmt"
	"math"

	"lwcomp/internal/core"
	"lwcomp/internal/query"
	"lwcomp/internal/scheme"
	"lwcomp/internal/vec"
	"lwcomp/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "I",
		Title: "Model-pruned range selection on FOR",
		Claim: `§II-B: "The rough correspondence of the column data to a simple model can be used to speed up selections (e.g. range queries)".`,
		Run:   runExpI,
	})
	register(Experiment{
		ID:    "J",
		Title: "Approximate and gradually-refined aggregation",
		Claim: `§II-B: the model view enables "approximate or gradual-refinement query processing".`,
		Run:   runExpJ,
	})
	register(Experiment{
		ID:    "L",
		Title: "Aggregation directly on RLE (decompression = query execution)",
		Claim: `Lessons 1: "There is no clear distinction between decompression and analytic query execution."`,
		Run:   runExpL,
	})
}

func runExpI(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "I",
		Title: "Model-pruned range selection on FOR",
		Claim: "segment pruning decodes only boundary segments; speedup grows as selectivity falls",
		Headers: []string{
			"selectivity", "rows", "decoded segs", "pruned Melem/s", "scan Melem/s", "speedup",
		},
	}
	data := workload.Sorted(cfg.N, 1<<40, cfg.Seed)
	forForm, err := scheme.FORComposite(1024).Compress(data)
	if err != nil {
		return nil, err
	}
	maxV := data[len(data)-1]
	for _, sel := range []float64{0.001, 0.01, 0.1, 0.5, 1.0} {
		lo := int64(0)
		hi := int64(float64(maxV) * sel)
		if sel >= 1.0 {
			hi = maxV
		}

		var prunedRows []int64
		var st query.SelectStats
		prunedT, err := timeBest(cfg.Reps, func() error {
			var err error
			prunedRows, st, err = query.SelectRangeFORWithStats(forForm, lo, hi)
			return err
		})
		if err != nil {
			return nil, err
		}

		var scanRows []int64
		scanT, err := timeBest(cfg.Reps, func() error {
			col, err := core.Decompress(forForm)
			if err != nil {
				return err
			}
			scanRows = vec.SelectRange(col, lo, hi)
			return nil
		})
		if err != nil {
			return nil, err
		}
		if !vec.Equal(prunedRows, scanRows) {
			return nil, fmt.Errorf("selectivity %.3f: pruned selection differs from scan", sel)
		}
		t.AddRow(
			fmt.Sprintf("%.3f", sel),
			fmt.Sprintf("%d", len(prunedRows)),
			fmt.Sprintf("%d/%d", st.DecodedSegments, st.Segments),
			melems(len(data), prunedT),
			melems(len(data), scanT),
			f2(scanT.Seconds()/prunedT.Seconds()),
		)
	}
	t.Notes = append(t.Notes,
		"data is sorted, so matching rows are contiguous: interior segments classify as fully inside (emitted without decoding offsets)",
		fmt.Sprintf("FOR segment length 1024, n = %d", cfg.N),
	)
	return t, nil
}

func runExpJ(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "J",
		Title: "Approximate and gradually-refined aggregation",
		Claim: "model-only bounds always contain the truth; refinement tightens them monotonically to exactness",
		Headers: []string{
			"refined segs", "interval width", "rel. err of midpoint", "contains truth",
		},
	}
	data := workload.RandomWalk(cfg.N, 12, 1<<33, cfg.Seed)
	var truth int64
	for _, v := range data {
		truth += v
	}
	forForm, err := scheme.FORComposite(1024).Compress(data)
	if err != nil {
		return nil, err
	}
	g, err := query.NewGradualSummer(forForm)
	if err != nil {
		return nil, err
	}
	total := g.Segments()
	report := func() {
		iv := g.Bounds()
		rel := math.Abs(float64(iv.Estimate())-float64(truth)) / math.Abs(float64(truth))
		contains := "yes"
		if !iv.Contains(truth) {
			contains = "NO"
		}
		t.AddRow(
			fmt.Sprintf("%d/%d", g.Refined(), total),
			fmt.Sprintf("%d", iv.Width()),
			fmt.Sprintf("%.2e", rel),
			contains,
		)
	}
	report()
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		target := int(frac * float64(total))
		if _, err := g.Refine(target - g.Refined()); err != nil {
			return nil, err
		}
		report()
	}
	if iv := g.Bounds(); iv.Lower != truth || iv.Width() != 0 {
		return nil, fmt.Errorf("gradual sum did not converge: %+v vs %d", iv, truth)
	}
	t.Notes = append(t.Notes,
		"row 0 is the paper's pure model estimate: no offsets decoded at all",
		fmt.Sprintf("FOR segment length 1024, n = %d", cfg.N),
	)
	return t, nil
}

func runExpL(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "L",
		Title: "Aggregation directly on RLE (decompression = query execution)",
		Claim: "SUM over runs (Σ lengths·values) beats decompress-then-scan by the run-length factor",
		Headers: []string{
			"avg run", "fused Melem/s", "decomp+scan Melem/s", "plain scan Melem/s", "speedup vs decomp+scan",
		},
	}
	for _, runLen := range []float64{4, 32, 256, 2048} {
		data := workload.Runs(cfg.N, runLen, 1<<16, cfg.Seed)
		var truth int64
		for _, v := range data {
			truth += v
		}
		rleForm, err := scheme.RLEComposite().Compress(data)
		if err != nil {
			return nil, err
		}

		fusedT, err := timeBest(cfg.Reps, func() error {
			got, err := query.Sum(rleForm)
			if err != nil {
				return err
			}
			if got != truth {
				return fmt.Errorf("fused sum %d != %d", got, truth)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		decompT, err := timeBest(cfg.Reps, func() error {
			col, err := core.Decompress(rleForm)
			if err != nil {
				return err
			}
			if vec.Sum(col) != truth {
				return fmt.Errorf("decomp sum mismatch")
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		plainT, err := timeBest(cfg.Reps, func() error {
			if vec.Sum(data) != truth {
				return fmt.Errorf("plain sum mismatch")
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%.0f", runLen),
			melems(len(data), fusedT),
			melems(len(data), decompT),
			melems(len(data), plainT),
			f2(decompT.Seconds()/fusedT.Seconds()),
		)
	}
	t.Notes = append(t.Notes,
		"fused route touches only the runs columns: work is O(runs), not O(n)",
		fmt.Sprintf("n = %d", cfg.N),
	)
	return t, nil
}
