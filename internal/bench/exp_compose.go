package bench

import (
	"fmt"

	"lwcomp/internal/core"
	"lwcomp/internal/scheme"
	"lwcomp/internal/storage"
	"lwcomp/internal/vec"
	"lwcomp/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "A",
		Title: "Composition beats single schemes on shipped-order dates",
		Claim: `§I: "Applying an RLE scheme to the dates, then applying DELTA to the run values, achieves a much stronger compression ratio than any single scheme individually."`,
		Run:   runExpA,
	})
}

// runExpA compresses the §I date column under every single scheme and
// the paper's composition, across run lengths.
func runExpA(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "A",
		Title: "Composition beats single schemes on shipped-order dates",
		Claim: "composite RLE∘DELTA ≫ best single scheme; gap grows with run length",
		Headers: []string{
			"avg run", "scheme", "bytes", "ratio", "vs best single",
		},
	}

	type entry struct {
		name string
		s    core.Scheme
	}
	singles := []entry{
		{"ns", scheme.NS{}},
		{"varint", scheme.Varint{}},
		{"delta+ns", scheme.DeltaNS()},
		{"for+ns", scheme.FORComposite(1024)},
		{"rle+ns", scheme.RLEComposite()},
	}
	composites := []entry{
		{"rle(delta+ns)   [paper §I]", scheme.RLEDeltaComposite()},
		{"rle(delta+vns)  [§I + §II-B widths]", scheme.RLEDeltaVNSComposite()},
	}

	for _, runLen := range []float64{16, 64, 256, 1024} {
		dates := workload.OrderShipDates(cfg.N, runLen, 730120, cfg.Seed)
		raw := len(dates) * 8

		bestSingle := 0
		sizes := map[string]int{}
		check := func(e entry) error {
			f, err := e.s.Compress(dates)
			if err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
			back, err := core.Decompress(f)
			if err != nil {
				return err
			}
			if !vec.Equal(back, dates) {
				return fmt.Errorf("%s: lossy roundtrip", e.name)
			}
			sz, err := storage.EncodedSize(f)
			if err != nil {
				return err
			}
			sizes[e.name] = sz
			return nil
		}
		for _, e := range singles {
			if err := check(e); err != nil {
				return nil, err
			}
			if bestSingle == 0 || sizes[e.name] < bestSingle {
				bestSingle = sizes[e.name]
			}
		}
		for _, e := range composites {
			if err := check(e); err != nil {
				return nil, err
			}
		}

		for _, e := range append(singles, composites...) {
			sz := sizes[e.name]
			t.AddRow(
				fmt.Sprintf("%.0f", runLen),
				e.name,
				fmt.Sprintf("%d", sz),
				ratio(raw, sz),
				f2(float64(bestSingle)/float64(sz)),
			)
		}
	}
	t.Notes = append(t.Notes,
		"'vs best single' > 1 means the composite beats every non-composite scheme",
		"rle(delta+ns) shows the first-delta width trap: DELTA's first entry is the absolute value, forcing NS's global width up;",
		"rle(delta+vns) fixes it with the paper's variable-width extension — one composition repairing another",
		fmt.Sprintf("n = %d date values per row group", cfg.N),
	)
	return t, nil
}
