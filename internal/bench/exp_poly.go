package bench

import (
	"fmt"

	"lwcomp/internal/core"
	"lwcomp/internal/scheme"
	"lwcomp/internal/storage"
	"lwcomp/internal/vec"
	"lwcomp/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "M",
		Title: "Model ladder: step → linear → quadratic, with and without patches",
		Claim: `§II-B: "more generally, we would replace step functions with stepwise low-degree polynomials"; and the L0/L∞ extensions compose.`,
		Run:   runExpM,
	})
}

// runExpM fits the model ladder to three curvature classes and, on a
// spiked variant, shows the patch combinator composing with the
// linear model.
func runExpM(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "M",
		Title: "Model ladder: step → linear → quadratic, with and without patches",
		Claim: "each model enrichment pays exactly on the data class it captures; patches compose with any model",
		Headers: []string{
			"workload", "model", "resid bits", "bytes", "ratio",
		},
	}

	segLen := 1024
	quad := make([]int64, cfg.N)
	for i := range quad {
		x := float64(i % segLen)
		quad[i] = int64(0.03*x*x) + int64(i%9)
	}
	flat := workload.RandomWalk(cfg.N, 12, 1<<30, cfg.Seed)
	trend := workload.TrendNoise(cfg.N, 8, 12, cfg.Seed)

	models := []struct {
		name string
		s    core.Scheme
	}{
		{"step+ns (FOR)", scheme.ModelResidual{Fitter: scheme.StepFitter{SegLen: segLen}}},
		{"linear+ns", scheme.ModelResidual{Fitter: scheme.LinearFitter{SegLen: segLen}}},
		{"poly2+ns", scheme.ModelResidual{Fitter: scheme.Poly2Fitter{SegLen: segLen}}},
	}
	datasets := []struct {
		name string
		data []int64
	}{
		{"flat walk", flat},
		{"linear trend", trend},
		{"quadratic", quad},
	}
	for _, ds := range datasets {
		raw := len(ds.data) * 8
		for _, m := range models {
			f, err := m.s.Compress(ds.data)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", m.name, ds.name, err)
			}
			back, err := core.Decompress(f)
			if err != nil {
				return nil, err
			}
			if !vec.Equal(back, ds.data) {
				return nil, fmt.Errorf("%s on %s: lossy", m.name, ds.name)
			}
			resid, err := f.Child("residual")
			if err != nil {
				return nil, err
			}
			sz, err := storage.EncodedSize(f)
			if err != nil {
				return nil, err
			}
			t.AddRow(ds.name, m.name,
				fmt.Sprintf("%d", resid.Params["width"]),
				fmt.Sprintf("%d", sz), ratio(raw, sz))
		}
	}

	// Patches composing with the linear model: spiked trend.
	spiked := make([]int64, len(trend))
	copy(spiked, trend)
	for i := 97; i < len(spiked); i += 701 {
		spiked[i] += 1 << 36
	}
	raw := len(spiked) * 8
	for _, m := range []struct {
		name string
		s    core.Scheme
	}{
		{"linear+ns (unpatched)", scheme.ModelResidual{Fitter: scheme.LinearFitter{SegLen: segLen}}},
		{"pfor (patched step)", scheme.PFOR{SegLen: segLen}},
		{"patched linear", scheme.PatchedModel{Fitter: scheme.LinearFitter{SegLen: segLen}}},
	} {
		f, err := m.s.Compress(spiked)
		if err != nil {
			return nil, fmt.Errorf("%s on spiked trend: %w", m.name, err)
		}
		back, err := core.Decompress(f)
		if err != nil {
			return nil, err
		}
		if !vec.Equal(back, spiked) {
			return nil, fmt.Errorf("%s on spiked trend: lossy", m.name)
		}
		sz, err := storage.EncodedSize(f)
		if err != nil {
			return nil, err
		}
		t.AddRow("spiked trend", m.name, "-", fmt.Sprintf("%d", sz), ratio(raw, sz))
	}

	t.Notes = append(t.Notes,
		"resid bits is the NS width of the residual column — the L∞ radius around each model",
		"on the spiked trend only the patched linear model keeps both the slope (L∞) and the outliers (L0) out of the residual width",
		fmt.Sprintf("segment length %d, n = %d", segLen, cfg.N),
	)
	return t, nil
}
