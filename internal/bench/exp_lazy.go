package bench

import (
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"lwcomp/internal/blocked"
	"lwcomp/internal/storage"
	"lwcomp/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "P",
		Title: "File-backed lazy columns: cold open + query vs eager read vs in-memory",
		Claim: `independently decodable blocks make opening a container O(block index): a cold point lookup reads the header, the index and one block instead of the whole file, and a warm lookup serves from the shared block cache`,
		Run:   runExpP,
	})
}

// countingReaderAt counts the bytes the lazy open path actually
// reads, making "cold-start reads O(1) blocks" measurable. It
// forwards Close so the container's Close releases the wrapped file.
type countingReaderAt struct {
	ra    io.ReaderAt
	bytes atomic.Int64
	calls atomic.Int64
}

func (c *countingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	c.bytes.Add(int64(len(p)))
	c.calls.Add(1)
	return c.ra.ReadAt(p, off)
}

func (c *countingReaderAt) Close() error {
	if closer, ok := c.ra.(io.Closer); ok {
		return closer.Close()
	}
	return nil
}

func runExpP(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "P",
		Title: "File-backed lazy columns: cold open + query vs eager read vs in-memory",
		Claim: "per-block re-composition pays off operationally: block independence turns cold-start I/O from O(file) into O(touched blocks)",
		Headers: []string{
			"path", "ms/op", "bytes read", "blocks decoded",
		},
	}

	// The EXP-N mixed column: a run-heavy dates region, a noisy
	// region, a sorted region. The noisy third keeps the container
	// honestly large, so O(touched blocks) and O(file) diverge the
	// way they do in production.
	third := cfg.N / 3
	data := append(workload.OrderShipDates(third, 256, 730120, cfg.Seed),
		workload.UniformBits(third, 40, cfg.Seed+1)...)
	data = append(data, workload.Sorted(cfg.N-2*third, 1<<40, cfg.Seed+2)...)
	col, err := blocked.Encode(data, blocked.EncodeOptions{BlockSize: 1 << 16})
	if err != nil {
		return nil, err
	}
	tmp, err := os.CreateTemp("", "lwcomp-expp-*.lwc")
	if err != nil {
		return nil, err
	}
	path := tmp.Name()
	defer os.Remove(path)
	if err := storage.WriteContainerV3(tmp, []storage.BlockedColumn{{Name: "c", Col: col}}); err != nil {
		tmp.Close()
		return nil, err
	}
	if err := tmp.Close(); err != nil {
		return nil, err
	}
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	fileSize := st.Size()

	// Look up inside the run-heavy first region: the resident block
	// is small, so the cold read is a few hundred bytes against a
	// multi-megabyte container.
	row := int64(third / 2)
	want := data[row]
	lookup := func(c *blocked.Column) error {
		v, err := c.PointLookup(row)
		if err != nil {
			return err
		}
		if v != want {
			return fmt.Errorf("lookup = %d, want %d", v, want)
		}
		return nil
	}
	addRow := func(name string, dur float64, bytes, blocks string) {
		t.AddRow(name, fmt.Sprintf("%.3f", dur), bytes, blocks)
	}

	// Eager (v2-era semantics): read and decode the whole container,
	// then look up. This is what every open cost before the lazy
	// path.
	eagerDur, err := timeBest(cfg.Reps, func() error {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		cols, err := storage.ReadAnyContainer(f)
		if err != nil {
			return err
		}
		return lookup(cols[0].Col)
	})
	if err != nil {
		return nil, err
	}
	t.AddMetric("eager-read+point", cfg.N, eagerDur, -1)
	addRow("eager read + point", eagerDur.Seconds()*1e3,
		fmt.Sprintf("%d", fileSize), fmt.Sprintf("%d", col.NumBlocks()))

	// Lazy cold: open (header + index only) and look up one row. The
	// counter shows exactly how little of the file a cold query
	// touches.
	var coldBytes, coldCalls int64
	coldDur, err := timeBest(cfg.Reps, func() error {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		cra := &countingReaderAt{ra: f}
		cf, err := storage.OpenContainer(cra, fileSize,
			storage.OpenOptions{CacheBytes: storage.DefaultBlockCacheBytes})
		if err != nil {
			f.Close()
			return err
		}
		defer cf.Close()
		if err := lookup(cf.Columns()[0].Col); err != nil {
			return err
		}
		coldBytes, coldCalls = cra.bytes.Load(), cra.calls.Load()
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddMetric("lazy-cold-open+point", cfg.N, coldDur, -1)
	addRow("lazy open + point (cold)", coldDur.Seconds()*1e3,
		fmt.Sprintf("%d (%d reads)", coldBytes, coldCalls), "1")

	// Lazy cold with mmap: the OS page cache owns residency.
	mmapDur, err := timeBest(cfg.Reps, func() error {
		cf, err := storage.OpenContainerFile(path,
			storage.OpenOptions{Mmap: true, CacheBytes: storage.DefaultBlockCacheBytes})
		if err != nil {
			return err
		}
		defer cf.Close()
		return lookup(cf.Columns()[0].Col)
	})
	if err != nil {
		return nil, err
	}
	t.AddMetric("lazy-cold-mmap+point", cfg.N, mmapDur, -1)
	addRow("lazy open + point (cold, mmap)", mmapDur.Seconds()*1e3, "mapped", "1")

	// Warm: the same handle, the block already in the shared cache —
	// the steady state of a server holding containers open.
	warmCf, err := storage.OpenContainerFile(path,
		storage.OpenOptions{CacheBytes: storage.DefaultBlockCacheBytes})
	if err != nil {
		return nil, err
	}
	defer warmCf.Close()
	warmCol := warmCf.Columns()[0].Col
	if err := lookup(warmCol); err != nil {
		return nil, err
	}
	warmDur, err := timeBest(cfg.Reps, func() error { return lookup(warmCol) })
	if err != nil {
		return nil, err
	}
	t.AddMetric("lazy-warm-point", cfg.N, warmDur, -1)
	addRow("warm point (cached payload)", warmDur.Seconds()*1e3, "0", "1")

	// In-memory baseline: the PR 1/PR 2 handle with resident forms.
	memDur, err := timeBest(cfg.Reps, func() error { return lookup(col) })
	if err != nil {
		return nil, err
	}
	t.AddMetric("in-memory-point", cfg.N, memDur, -1)
	addRow("in-memory point", memDur.Seconds()*1e3, "0", "1")

	// A stats-pruned range scan cold from disk: only straddling
	// blocks are fetched.
	lo, hi := data[row]-2, data[row]+2
	skipped, whole, consulted := col.SkipStats(lo, hi)
	var scanBytes int64
	scanDur, err := timeBest(cfg.Reps, func() error {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		cra := &countingReaderAt{ra: f}
		cf, err := storage.OpenContainer(cra, fileSize,
			storage.OpenOptions{CacheBytes: storage.DefaultBlockCacheBytes})
		if err != nil {
			f.Close()
			return err
		}
		defer cf.Close()
		if _, err := cf.Columns()[0].Col.CountRange(lo, hi); err != nil {
			return err
		}
		scanBytes = cra.bytes.Load()
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddMetric("lazy-cold-open+range", cfg.N, scanDur, -1)
	addRow("lazy open + range scan (cold)", scanDur.Seconds()*1e3,
		fmt.Sprintf("%d", scanBytes), fmt.Sprintf("%d (skip %d)", whole+consulted, skipped))

	inMemScanDur, err := timeBest(cfg.Reps, func() error {
		_, err := col.CountRange(lo, hi)
		return err
	})
	if err != nil {
		return nil, err
	}
	t.AddMetric("in-memory-range", cfg.N, inMemScanDur, -1)
	addRow("in-memory range scan", inMemScanDur.Seconds()*1e3, "0",
		fmt.Sprintf("%d (skip %d)", whole+consulted, skipped))

	t.Notes = append(t.Notes,
		fmt.Sprintf("container: %d bytes, %d blocks of %d values (mixed dates/noise/sorted column); lookup row %d",
			fileSize, col.NumBlocks(), 1<<16, row),
		"'bytes read' is measured through a counting io.ReaderAt wrapped around the file",
		"eager = v2-era ReadAnyContainer (whole file + every block decoded before the first query)",
		fmt.Sprintf("n = %d, reps = %d (best kept)", cfg.N, cfg.Reps),
	)
	return t, nil
}
