package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"lwcomp/internal/blocked"
	"lwcomp/internal/server"
	"lwcomp/internal/storage"
	"lwcomp/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "S",
		Title: "Query server under concurrency: admission control, shared cache, tail latency",
		Claim: `the lwcd server holds many concurrent clients at zero errors inside its admission limit — the shared block cache turns repeated scans into cache hits — and past the limit it degrades by contract: O(1) rejections with 429 + Retry-After instead of collapse`,
		Run:   runExpS,
	})
}

// expSClients is the concurrent-client floor the acceptance criterion
// names: the load scenarios drive at least this many clients at once.
const expSClients = 200

// serveMetrics mirrors the slice of the /metrics document EXP-S
// records (the full shape lives in internal/server).
type serveMetrics struct {
	Queries struct {
		Total    int64 `json:"total"`
		Rejected int64 `json:"rejected"`
		Timeouts int64 `json:"timeouts"`
		Errors   int64 `json:"errors"`
	} `json:"queries"`
	LatencyUs struct {
		P50 int64 `json:"p50"`
		P99 int64 `json:"p99"`
	} `json:"latency_us"`
	Cache struct {
		Hits    int64   `json:"hits"`
		Misses  int64   `json:"misses"`
		HitRate float64 `json:"hit_rate"`
	} `json:"cache"`
}

// scrapeMetrics fetches and decodes /metrics.
func scrapeMetrics(url string) (serveMetrics, error) {
	var m serveMetrics
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	return m, json.NewDecoder(resp.Body).Decode(&m)
}

// fireClients runs clients goroutines, each posting perClient copies
// of body to /query, and tallies responses by class.
func fireClients(url string, body []byte, clients, perClient int) (ok, rejected, failed int64, missingRetryAfter int64) {
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConnsPerHost = clients
	client := &http.Client{Transport: transport}
	defer transport.CloseIdleConnections()

	var okN, rejN, failN, noRA atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := client.Post(url+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					failN.Add(1)
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					okN.Add(1)
				case http.StatusTooManyRequests:
					rejN.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						noRA.Add(1)
					}
				default:
					failN.Add(1)
				}
				// Drain so connections recycle instead of piling up.
				buf := make([]byte, 4096)
				for {
					if _, err := resp.Body.Read(buf); err != nil {
						break
					}
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	return okN.Load(), rejN.Load(), failN.Load(), noRA.Load()
}

func runExpS(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "S",
		Title: "Query server under concurrency: admission control, shared cache, tail latency",
		Claim: "inside the admission limit: zero errors at 200+ concurrent clients; past it: 429 + Retry-After, never collapse",
		Headers: []string{
			"scenario", "clients", "queries", "ok", "429", "errors", "p50 ms", "p99 ms", "cache hit",
		},
	}

	// One served table, written the way lwcd mounts tables: one
	// single-column container per column.
	dir, err := os.MkdirTemp("", "lwcomp-exps-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	amount := workload.RandomWalk(cfg.N, 12, 1<<30, cfg.Seed)
	status := workload.LowCardinality(cfg.N, 8, cfg.Seed+1)
	for name, data := range map[string][]int64{"amount": amount, "status": status} {
		col, err := blocked.Encode(data, blocked.EncodeOptions{BlockSize: 1 << 14})
		if err != nil {
			return nil, err
		}
		f, err := os.Create(filepath.Join(dir, "orders."+name+".lwc"))
		if err != nil {
			return nil, err
		}
		if err := storage.WriteContainerV3(f, []storage.BlockedColumn{{Name: "c", Col: col}}); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}

	// A mid-walk threshold leaves a real mix of skipped, proved and
	// fetched blocks — the query does representative work.
	where := fmt.Sprintf("amount >= %d and status = %d", amount[cfg.N/2], status[0])
	countBody, _ := json.Marshal(map[string]any{"table": "orders", "where": where, "op": "count"})
	sumBody, _ := json.Marshal(map[string]any{
		"table": "orders", "where": where, "op": "sum", "columns": []string{"amount"}})

	// Scenario 1+2: a governed server with queue headroom for the full
	// client herd — the acceptance run. Every query must succeed.
	srv, err := server.New(server.Config{Dir: dir, MaxQueue: 100000})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	perClient := 5
	for _, sc := range []struct {
		name string
		body []byte
	}{
		{"concurrent count", countBody},
		{"concurrent sum", sumBody},
	} {
		start := time.Now()
		ok, rej, fail, _ := fireClients(ts.URL, sc.body, expSClients, perClient)
		elapsed := time.Since(start)
		m, err := scrapeMetrics(ts.URL)
		if err != nil {
			ts.Close()
			srv.Close()
			return nil, err
		}
		if fail > 0 || rej > 0 {
			ts.Close()
			srv.Close()
			return nil, fmt.Errorf("EXP-S %s: %d failures, %d rejections — inside the admission limit both must be zero", sc.name, fail, rej)
		}
		t.AddRow(sc.name, itoa(expSClients), itoa(int(ok)), itoa(int(ok)), "0", "0",
			f2(float64(m.LatencyUs.P50)/1e3), f2(float64(m.LatencyUs.P99)/1e3), f2(m.Cache.HitRate))
		// The metric's n is the rows one query covers; d the mean
		// latency across the run — MB/s then reads as per-query scan
		// throughput under full concurrency.
		t.AddMetric("serve/"+sc.name, cfg.N, elapsed/time.Duration(ok), 0)
	}
	hitRate := func() float64 {
		m, _ := scrapeMetrics(ts.URL)
		return m.Cache.HitRate
	}()
	ts.Close()
	srv.Close()

	// Scenario 3: a deliberately tiny admission envelope under the
	// same herd. The contract is 429 + Retry-After for the overflow and
	// zero non-rejection errors — saturation degrades loudly, not
	// catastrophically.
	satSrv, err := server.New(server.Config{Dir: dir, MaxConcurrent: 2, MaxQueue: 8})
	if err != nil {
		return nil, err
	}
	satTS := httptest.NewServer(satSrv.Handler())
	// Full-table row streaming holds its slot for the whole stream,
	// so the client herd genuinely overruns the two slots + eight
	// queue places instead of slipping through between fast counts.
	// batch_rows scales with n to keep ~16k flushed frames per query:
	// slot-hold time stays in the tens of milliseconds at any -n —
	// long against scheduler granularity even on one core, so the
	// herd reliably overruns two slots.
	satBatch := cfg.N / (1 << 14)
	if satBatch < 1 {
		satBatch = 1
	}
	satBody, _ := json.Marshal(map[string]any{
		"table": "orders", "op": "rows", "columns": []string{"amount"}, "batch_rows": satBatch})
	var ok, rej, fail, noRA int64
	for attempt := 0; attempt < 3; attempt++ {
		ok, rej, fail, noRA = fireClients(satTS.URL, satBody, expSClients, 2)
		if rej > 0 || fail > 0 {
			break
		}
	}
	m, err := scrapeMetrics(satTS.URL)
	satTS.Close()
	satSrv.Close()
	if err != nil {
		return nil, err
	}
	if rej == 0 {
		return nil, fmt.Errorf("EXP-S saturation: %d clients against 2 slots produced no 429s", expSClients)
	}
	if noRA > 0 {
		return nil, fmt.Errorf("EXP-S saturation: %d of %d rejections lacked a Retry-After header", noRA, rej)
	}
	if fail > 0 {
		return nil, fmt.Errorf("EXP-S saturation: %d queries failed outright (only 200 and 429 are in-contract)", fail)
	}
	t.AddRow("saturation (2 slots)", itoa(expSClients), itoa(int(ok+rej)), itoa(int(ok)),
		itoa(int(rej)), "0", f2(float64(m.LatencyUs.P50)/1e3), f2(float64(m.LatencyUs.P99)/1e3), "-")
	t.Metrics = append(t.Metrics, Metric{Name: "serve/saturation 429 fraction",
		NsPerOp: 0, MBPerS: 0, AllocsPerOp: float64(rej) / float64(ok+rej)})

	t.Notes = append(t.Notes,
		fmt.Sprintf("every mounted container shares one %d MiB block-cache budget; final pooled hit rate %.2f", server.DefaultCacheBytes>>20, hitRate),
		"saturation row: 2 admission slots + 8 queue places; every overflow query was rejected with 429 + Retry-After and zero queries failed outright",
		"429 fraction is recorded in the saturation metric's allocs_per_op field (the schema has no dedicated slot)")
	return t, nil
}

// itoa is a tiny strconv.Itoa stand-in keeping the row-building terse.
func itoa(v int) string { return fmt.Sprintf("%d", v) }
