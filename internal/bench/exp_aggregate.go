package bench

import (
	"context"
	"fmt"
	"math"

	"lwcomp/internal/blocked"
	"lwcomp/internal/storage"
	"lwcomp/internal/table"
	"lwcomp/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "U",
		Title: "Fused scan+aggregate: CountWhere/SumWhere vs Scan+Count+Sum",
		Claim: `fusing predicate evaluation and aggregation into one pass over the compressed blocks beats the scan-then-aggregate pipeline across the dict/RLE/model scheme families: count and same-column sum never materialize a selection at all, and the other-column sum consumes each block-local selection while it is still hot — at zero steady-state allocations`,
		Run:   runExpU,
	})
}

// runExpU measures the fused aggregate entry points against the
// classic pipeline (Scan, then Count and Sum over the selection) on
// single-predicate range queries whose band straddles most blocks, so
// stats pruning cannot win and per-row work dominates. Each data
// shape drives blocked.Encode to a different non-NS scheme family for
// the predicate column; the summed "amount" column is a random walk
// throughout.
func runExpU(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "U",
		Title: "Fused scan+aggregate: CountWhere/SumWhere vs Scan+Count+Sum",
		Claim: "one pass over the compressed blocks, no materialized selection for count and same-column sum",
		Headers: []string{
			"shape", "op", "fused ms/op", "classic ms/op", "speedup", "fused allocs/op",
		},
	}

	n := cfg.N
	amount := workload.RandomWalk(n, 10, 1<<30, cfg.Seed+100)
	shapes := []struct {
		name string
		data []int64
	}{
		{"runs r=64", workload.Runs(n, 64, 1<<20, cfg.Seed)},
		{"lowcard k=64", workload.LowCardinality(n, 64, cfg.Seed+1)},
		{"step s=512", workload.StepData(n, 512, cfg.Seed+2)},
		{"trend+noise", workload.TrendNoise(n, 0.5, 1<<12, cfg.Seed+3)},
		{"walk w=12", workload.RandomWalk(n, 12, 1<<30, cfg.Seed+4)},
	}

	ctx := context.Background()
	var speedups []float64
	for _, sh := range shapes {
		vcol, err := blocked.Encode(sh.data, blocked.EncodeOptions{BlockSize: 1 << 14})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sh.name, err)
		}
		acol, err := blocked.Encode(amount, blocked.EncodeOptions{BlockSize: 1 << 14})
		if err != nil {
			return nil, err
		}
		tbl, err := table.New([]storage.BlockedColumn{
			{Name: "v", Col: vcol},
			{Name: "amount", Col: acol},
		}, nil)
		if err != nil {
			return nil, err
		}
		tbl.Parallelism = 1

		// The middle three-fifths of the value domain: wide enough that
		// nearly every block straddles the band, so the comparison is
		// per-row kernel work, not stats pruning (EXP-Q covers pruning).
		mn, mx := sh.data[0], sh.data[0]
		for _, v := range sh.data {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		span := mx - mn
		lo, hi := mn+span/5, mn+span*4/5
		expr := table.Range("v", lo, hi)

		var refCount, refSumV, refSumA int64
		for i, v := range sh.data {
			if v >= lo && v <= hi {
				refCount++
				refSumV += v
				refSumA += amount[i]
			}
		}

		type op struct {
			name    string
			fused   func() error
			classic func() error
		}
		ops := []op{
			{
				name: "count",
				fused: func() error {
					got, err := tbl.CountWhere(ctx, expr)
					if err != nil {
						return err
					}
					if got != refCount {
						return fmt.Errorf("fused count %d != %d", got, refCount)
					}
					return nil
				},
				classic: func() error {
					s, err := tbl.Scan(expr)
					if err != nil {
						return err
					}
					got := int64(s.Count())
					s.Release()
					if got != refCount {
						return fmt.Errorf("classic count %d != %d", got, refCount)
					}
					return nil
				},
			},
			{
				name: "sum(v)",
				fused: func() error {
					sum, cnt, err := tbl.SumWhere(ctx, expr, "v")
					if err != nil {
						return err
					}
					if cnt != refCount || sum != refSumV {
						return fmt.Errorf("fused sum(v) = %d/%d, want %d/%d", sum, cnt, refSumV, refCount)
					}
					return nil
				},
				classic: func() error {
					s, err := tbl.Scan(expr)
					if err != nil {
						return err
					}
					sum, err := s.Sum("v")
					s.Release()
					if err != nil {
						return err
					}
					if sum != refSumV {
						return fmt.Errorf("classic sum(v) = %d, want %d", sum, refSumV)
					}
					return nil
				},
			},
			{
				// The dashboard query: matched count plus sums over the
				// predicate column and a second column, in one pass.
				name: "count+sums",
				fused: func() error {
					agg, err := tbl.Aggregate(ctx, expr, []string{"v", "amount"}, table.ScanOptions{})
					if err != nil {
						return err
					}
					if agg.Matched != refCount || agg.Sums[0] != refSumV || agg.Sums[1] != refSumA {
						return fmt.Errorf("fused aggregate = %d/%d/%d, want %d/%d/%d",
							agg.Matched, agg.Sums[0], agg.Sums[1], refCount, refSumV, refSumA)
					}
					return nil
				},
				classic: func() error {
					s, err := tbl.Scan(expr)
					if err != nil {
						return err
					}
					cnt := int64(s.Count())
					sumV, err := s.Sum("v")
					if err != nil {
						s.Release()
						return err
					}
					sumA, err := s.Sum("amount")
					s.Release()
					if err != nil {
						return err
					}
					if cnt != refCount || sumV != refSumV || sumA != refSumA {
						return fmt.Errorf("classic aggregate = %d/%d/%d, want %d/%d/%d",
							cnt, sumV, sumA, refCount, refSumV, refSumA)
					}
					return nil
				},
			},
		}

		for _, o := range ops {
			fusedT, err := timeBest(cfg.Reps, o.fused)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", sh.name, o.name, err)
			}
			classicT, err := timeBest(cfg.Reps, o.classic)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", sh.name, o.name, err)
			}
			fusedAllocs, err := allocsPerRun(10, o.fused)
			if err != nil {
				return nil, err
			}
			sp := classicT.Seconds() / fusedT.Seconds()
			speedups = append(speedups, sp)
			t.AddRow(sh.name, o.name,
				fmt.Sprintf("%.3f", fusedT.Seconds()*1e3),
				fmt.Sprintf("%.3f", classicT.Seconds()*1e3),
				f2(sp), fmt.Sprintf("%.1f", fusedAllocs))
			t.AddMetric(sh.name+"/"+o.name+"/fused", n, fusedT, fusedAllocs)
			t.AddMetric(sh.name+"/"+o.name+"/classic", n, classicT, -1)
		}
	}

	logSum := 0.0
	for _, sp := range speedups {
		logSum += math.Log(sp)
	}
	geomean := math.Exp(logSum / float64(len(speedups)))
	t.Metrics = append(t.Metrics, Metric{Name: "geomean-speedup", NsPerOp: 0, MBPerS: 0, AllocsPerOp: -1})
	t.Metrics[len(t.Metrics)-1].NsPerOp = geomean // ratio, not a latency; kept for the JSON snapshot
	t.Notes = append(t.Notes,
		fmt.Sprintf("geomean speedup over the classic pipeline across all shapes and ops: %.2fx", geomean),
		"band is the middle three-fifths of each value domain, so blocks straddle it and pruning cannot win",
		"count and sum(v) exploit block structure (run walks, packed-word kernels) without materializing rows; count+sums consumes each block-local selection while it is hot and sums the predicate column without decoding it",
		"classic pipeline = Scan (full selection bitmap) + Count + Sum over the surviving blocks",
		fmt.Sprintf("n = %d per shape, block size 16384, reps = %d (best kept), parallelism 1", n, cfg.Reps),
	)
	return t, nil
}
