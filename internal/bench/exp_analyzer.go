package bench

import (
	"fmt"

	"lwcomp/internal/core"
	"lwcomp/internal/scheme"
	"lwcomp/internal/storage"
	"lwcomp/internal/vec"
	"lwcomp/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "K",
		Title: "The richer scheme space pays: analyzer vs best single scheme",
		Claim: `§I: the paper argues "for a richer view of the space of lightweight compression schemes"; searching compositions must dominate any fixed single scheme.`,
		Run:   runExpK,
	})
}

func runExpK(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "K",
		Title: "The richer scheme space pays: analyzer vs best single scheme",
		Claim: "the analyzer's composite choice is never worse than the best terminal scheme, and is often far better",
		Headers: []string{
			"workload", "chosen scheme", "ratio", "best single", "single ratio", "gain",
		},
	}
	workloads := []struct {
		name string
		data []int64
	}{
		{"ship dates (runs 64)", workload.OrderShipDates(cfg.N, 64, 730120, cfg.Seed)},
		{"random walk ±10", workload.RandomWalk(cfg.N, 10, 1<<33, cfg.Seed)},
		{"outlier walk 1%", workload.OutlierWalk(cfg.N, 10, 0.01, 1<<38, cfg.Seed)},
		{"trend slope 8", workload.TrendNoise(cfg.N, 8, 12, cfg.Seed)},
		{"low card 32", workload.LowCardinality(cfg.N, 32, cfg.Seed)},
		{"skewed widths", workload.SkewedMagnitude(cfg.N, 40, cfg.Seed)},
		{"uniform 12-bit", workload.UniformBits(cfg.N, 12, cfg.Seed)},
		{"constant", workload.UniformBits(cfg.N, 0, cfg.Seed)},
	}
	// Terminal (single, non-composite) baselines.
	singles := []core.Scheme{scheme.NS{}, scheme.Varint{}, scheme.Elias{}, scheme.ID{}}

	for _, w := range workloads {
		raw := len(w.data) * 8
		st := core.CollectStats(w.data, nil)
		a := &core.Analyzer{Candidates: scheme.DefaultCandidates(&st), SampleSize: 1 << 16, Stats: &st}
		choice, err := a.Best(w.data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.name, err)
		}
		back, err := core.Decompress(choice.Form)
		if err != nil {
			return nil, err
		}
		if !vec.Equal(back, w.data) {
			return nil, fmt.Errorf("%s: winner %q lossy", w.name, choice.Desc)
		}
		chosenSz, err := storage.EncodedSize(choice.Form)
		if err != nil {
			return nil, err
		}

		bestSingleName := ""
		bestSingleSz := 0
		for _, s := range singles {
			f, err := s.Compress(w.data)
			if err != nil {
				continue
			}
			sz, err := storage.EncodedSize(f)
			if err != nil {
				return nil, err
			}
			if bestSingleSz == 0 || sz < bestSingleSz {
				bestSingleSz = sz
				bestSingleName = s.Name()
			}
		}
		t.AddRow(
			w.name,
			choice.Desc,
			ratio(raw, chosenSz),
			bestSingleName,
			ratio(raw, bestSingleSz),
			f2(float64(bestSingleSz)/float64(chosenSz)),
		)
	}
	t.Notes = append(t.Notes,
		"'gain' = best-single bytes / chosen bytes; ≥ 1.00 everywhere is the claim under test",
		fmt.Sprintf("n = %d per workload; analyzer samples the first %d values", cfg.N, 1<<16),
	)
	return t, nil
}
