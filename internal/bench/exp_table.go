package bench

import (
	"fmt"
	"os"

	"lwcomp/internal/blocked"
	"lwcomp/internal/storage"
	"lwcomp/internal/table"
	"lwcomp/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "Q",
		Title: "Multi-column pushdown: table scan on compressed columns vs decompress-then-filter",
		Claim: `composable predicates planned per block across columns beat decompress-then-filter: blocks any conjunct's [min,max] stats refute are never touched, undecided blocks scan fused on the compressed forms, and aggregation decodes only blocks with survivors — with zero steady-state allocations in memory and O(admitted blocks) reads from disk`,
		Run:   runExpQ,
	})
}

// runExpQ measures the two-predicate scan + aggregate of the README
// walkthrough — count and sum(amount) where date falls in a window
// and status equals one value — four ways: pushdown in memory,
// decompress-then-filter in memory, pushdown cold from a lazily
// opened container (bytes read counted), and the eager-read baseline.
func runExpQ(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "Q",
		Title: "Multi-column pushdown: table scan on compressed columns vs decompress-then-filter",
		Claim: "predicate pushdown over decomposed columns turns a multi-column filter+aggregate from O(n) decode into O(admitted blocks)",
		Headers: []string{
			"path", "ms/op", "allocs/op", "bytes read",
		},
	}

	n := cfg.N
	date := workload.OrderShipDates(n, 64, 730120, cfg.Seed)
	status := workload.LowCardinality(n, 8, cfg.Seed+1)
	amount := workload.RandomWalk(n, 10, 1<<30, cfg.Seed+2)
	names := []string{"date", "status", "amount"}
	data := [][]int64{date, status, amount}

	cols := make([]storage.BlockedColumn, len(names))
	for i, name := range names {
		col, err := blocked.Encode(data[i], blocked.EncodeOptions{BlockSize: 1 << 16})
		if err != nil {
			return nil, err
		}
		cols[i] = storage.BlockedColumn{Name: name, Col: col}
	}
	tbl, err := table.New(cols, nil)
	if err != nil {
		return nil, err
	}

	// A ~10% date window and one status value: selective enough that
	// stats refute most blocks for at least one conjunct.
	lo, hi := date[n/2], date[n/2+n/10]
	if lo > hi {
		lo, hi = hi, lo
	}
	sv := status[n/2]
	expr := table.And(table.Range("date", lo, hi), table.Eq("status", sv))

	// Reference: decompress-then-filter with preallocated buffers (the
	// steady state a non-pushdown engine could at best reach).
	bufs := [3][]int64{make([]int64, n), make([]int64, n), make([]int64, n)}
	var refCount int64
	var refSum int64
	naive := func() error {
		for i := range cols {
			if err := cols[i].Col.DecompressInto(bufs[i]); err != nil {
				return err
			}
		}
		refCount, refSum = 0, 0
		for i := 0; i < n; i++ {
			if bufs[0][i] >= lo && bufs[0][i] <= hi && bufs[1][i] == sv {
				refCount++
				refSum += bufs[2][i]
			}
		}
		return nil
	}
	if err := naive(); err != nil {
		return nil, err
	}

	// Pushdown in memory: scan + count + sum over survivors.
	var gotCount, gotSum int64
	pushdown := func() error {
		s, err := tbl.Scan(expr)
		if err != nil {
			return err
		}
		gotCount = int64(s.Count())
		gotSum, err = s.Sum("amount")
		s.Release()
		return err
	}
	if err := pushdown(); err != nil {
		return nil, err
	}
	if gotCount != refCount || gotSum != refSum {
		return nil, fmt.Errorf("pushdown disagrees with naive: count %d vs %d, sum %d vs %d",
			gotCount, refCount, gotSum, refSum)
	}

	pushDur, err := timeBest(cfg.Reps, pushdown)
	if err != nil {
		return nil, err
	}
	pushAllocs, err := allocsPerRun(10, pushdown)
	if err != nil {
		return nil, err
	}
	t.AddMetric("table-scan-pushdown", n, pushDur, pushAllocs)
	t.AddRow("pushdown (in-memory)", fmt.Sprintf("%.3f", pushDur.Seconds()*1e3),
		fmt.Sprintf("%.0f", pushAllocs), "0")

	naiveDur, err := timeBest(cfg.Reps, naive)
	if err != nil {
		return nil, err
	}
	naiveAllocs, err := allocsPerRun(10, naive)
	if err != nil {
		return nil, err
	}
	t.AddMetric("decompress-then-filter", n, naiveDur, naiveAllocs)
	t.AddRow("decompress-then-filter (in-memory)", fmt.Sprintf("%.3f", naiveDur.Seconds()*1e3),
		fmt.Sprintf("%.0f", naiveAllocs), "0")

	// Cold from disk: write a v3 container, open lazily through a
	// counting reader, scan + sum — only admitted blocks are read.
	tmp, err := os.CreateTemp("", "lwcomp-expq-*.lwc")
	if err != nil {
		return nil, err
	}
	path := tmp.Name()
	defer os.Remove(path)
	if err := storage.WriteContainerV3(tmp, cols); err != nil {
		tmp.Close()
		return nil, err
	}
	if err := tmp.Close(); err != nil {
		return nil, err
	}
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	fileSize := st.Size()

	var coldBytes int64
	coldDur, err := timeBest(cfg.Reps, func() error {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		cra := &countingReaderAt{ra: f}
		cf, err := storage.OpenContainer(cra, fileSize,
			storage.OpenOptions{CacheBytes: storage.DefaultBlockCacheBytes})
		if err != nil {
			f.Close()
			return err
		}
		defer cf.Close()
		ltbl, err := table.New(cf.Columns(), nil)
		if err != nil {
			return err
		}
		s, err := ltbl.Scan(expr)
		if err != nil {
			return err
		}
		count := int64(s.Count())
		sum, err := s.Sum("amount")
		s.Release()
		if err != nil {
			return err
		}
		if count != refCount || sum != refSum {
			return fmt.Errorf("cold pushdown disagrees: count %d vs %d", count, refCount)
		}
		coldBytes = cra.bytes.Load()
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddMetric("table-scan-cold-lazy", n, coldDur, -1)
	t.AddRow("pushdown (cold, lazy open)", fmt.Sprintf("%.3f", coldDur.Seconds()*1e3),
		"-", fmt.Sprintf("%d of %d", coldBytes, fileSize))

	// Eager baseline: read + decode the whole container, then filter.
	eagerDur, err := timeBest(cfg.Reps, func() error {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		read, err := storage.ReadAnyContainer(f)
		if err != nil {
			return err
		}
		etbl, err := table.New(read, nil)
		if err != nil {
			return err
		}
		s, err := etbl.Scan(expr)
		if err != nil {
			return err
		}
		count := int64(s.Count())
		s.Release()
		if count != refCount {
			return fmt.Errorf("eager scan disagrees: %d vs %d", count, refCount)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddMetric("eager-read-then-scan", n, eagerDur, -1)
	t.AddRow("eager read + scan (cold)", fmt.Sprintf("%.3f", eagerDur.Seconds()*1e3),
		"-", fmt.Sprintf("%d", fileSize))

	skipped, whole, consulted := cols[0].Col.SkipStats(lo, hi)
	t.Notes = append(t.Notes,
		fmt.Sprintf("predicate: %s; matches %d of %d rows; sum over %q", expr, refCount, n, "amount"),
		fmt.Sprintf("date column blocks under the range alone: %d skipped, %d whole, %d consulted (of %d)",
			skipped, whole, consulted, cols[0].Col.NumBlocks()),
		"allocs/op is steady-state (pools warm); '-' marks cold paths, which allocate per open",
		fmt.Sprintf("n = %d, reps = %d (best kept)", cfg.N, cfg.Reps),
	)
	return t, nil
}
