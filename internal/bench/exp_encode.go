package bench

import (
	"fmt"

	"lwcomp"
	"lwcomp/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "R",
		Title: "Statistics-driven encode: estimate-pruned search vs exhaustive trial compression",
		Claim: "ranking candidates by a size-estimating cost model and trial-encoding only the top few preserves the exhaustive search's choices (≤1.05x bits) while encoding several times faster (this repo's extension)",
		Run:   runExpR,
	})
}

func runExpR(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "R",
		Title: "Statistics-driven encode: estimate-pruned search vs exhaustive trial compression",
		Claim: "the pruned analyzer matches exhaustive choices at a fraction of the encode cost",
		Headers: []string{
			"workload", "chosen scheme", "pruned MB/s", "exhaustive MB/s", "speedup", "size ratio",
		},
	}
	workloads := []struct {
		name string
		data []int64
	}{
		{"ship dates (runs 64)", workload.OrderShipDates(cfg.N, 64, 730120, cfg.Seed)},
		{"random walk ±10", workload.RandomWalk(cfg.N, 10, 1<<33, cfg.Seed)},
		{"outlier walk 1%", workload.OutlierWalk(cfg.N, 10, 0.01, 1<<38, cfg.Seed)},
		{"trend slope 8", workload.TrendNoise(cfg.N, 8, 12, cfg.Seed)},
		{"low card 32", workload.LowCardinality(cfg.N, 32, cfg.Seed)},
		{"skewed widths", workload.SkewedMagnitude(cfg.N, 40, cfg.Seed)},
		{"uniform 12-bit", workload.UniformBits(cfg.N, 12, cfg.Seed)},
		{"sorted", workload.Sorted(cfg.N, 1<<40, cfg.Seed)},
	}

	encodeOpts := func(exhaustive bool) []lwcomp.Option {
		opts := []lwcomp.Option{lwcomp.WithBlockSize(1 << 16), lwcomp.WithParallelism(1)}
		if exhaustive {
			opts = append(opts, lwcomp.WithExhaustiveSearch())
		}
		return opts
	}

	mbps := func(n int, secs float64) string {
		return fmt.Sprintf("%.0f", float64(n)*8/secs/1e6)
	}

	for _, w := range workloads {
		var prunedCol, exhaustiveCol *lwcomp.Column
		dPruned, err := timeBest(cfg.Reps, func() error {
			c, err := lwcomp.Encode(w.data, encodeOpts(false)...)
			prunedCol = c
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("%s: pruned: %w", w.name, err)
		}
		dExh, err := timeBest(cfg.Reps, func() error {
			c, err := lwcomp.Encode(w.data, encodeOpts(true)...)
			exhaustiveCol = c
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("%s: exhaustive: %w", w.name, err)
		}
		back, err := prunedCol.Decompress()
		if err != nil {
			return nil, fmt.Errorf("%s: decompress: %w", w.name, err)
		}
		for i := range back {
			if back[i] != w.data[i] {
				return nil, fmt.Errorf("%s: pruned encode is lossy at row %d", w.name, i)
			}
		}
		prunedBits := prunedCol.EncodedBits()
		exhBits := exhaustiveCol.EncodedBits()
		allocs, err := allocsPerRun(3, func() error {
			_, err := lwcomp.Encode(w.data, encodeOpts(false)...)
			return err
		})
		if err != nil {
			return nil, err
		}

		desc := prunedCol.BlockSchemes()[0]
		t.AddRow(
			w.name,
			desc,
			mbps(cfg.N, dPruned.Seconds()),
			mbps(cfg.N, dExh.Seconds()),
			f2(dExh.Seconds()/dPruned.Seconds()),
			f2(float64(prunedBits)/float64(exhBits)),
		)
		t.AddMetric("encode/"+w.name+"/pruned", cfg.N, dPruned, allocs)
		t.AddMetric("encode/"+w.name+"/exhaustive", cfg.N, dExh, 0)
	}
	t.Notes = append(t.Notes,
		"single worker, 64Ki blocks; 'size ratio' = pruned bits / exhaustive bits (≤ 1.05 is the acceptance bound)",
		"'exhaustive' trial-compresses every candidate per block — the pre-ISSUE-5 behavior plus pooled kernels",
		fmt.Sprintf("n = %d per workload, seed = %d", cfg.N, cfg.Seed),
	)
	return t, nil
}
