package bench

import (
	"fmt"

	"lwcomp/internal/core"
	"lwcomp/internal/scheme"
	"lwcomp/internal/storage"
	"lwcomp/internal/vec"
	"lwcomp/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "F",
		Title: "L0 patches: PFOR vs FOR across outlier rates",
		Claim: `§II-B: "For the L0 metric … we could add patches to the basic model; this would represent columns whose data is 'really' a step function, but with the occasional divergent arbitrary-value element."`,
		Run:   runExpF,
	})
}

func runExpF(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "F",
		Title: "L0 patches: PFOR vs FOR across outlier rates",
		Claim: "patching wins at low outlier rates, converges to FOR as outliers vanish, and loses its edge as they dominate",
		Headers: []string{
			"outlier rate", "for+ns bytes", "pfor bytes", "exceptions", "pfor/for", "patching wins",
		},
	}
	segLen := 1024
	for _, rate := range []float64{0, 0.0001, 0.001, 0.01, 0.05, 0.1, 0.3} {
		data := workload.OutlierWalk(cfg.N, 10, rate, 1<<38, cfg.Seed)

		forForm, err := scheme.FORComposite(segLen).Compress(data)
		if err != nil {
			return nil, err
		}
		pforForm, err := (scheme.PFOR{SegLen: segLen}).Compress(data)
		if err != nil {
			return nil, err
		}
		for _, f := range []*core.Form{forForm, pforForm} {
			got, err := core.Decompress(f)
			if err != nil {
				return nil, err
			}
			if !vec.Equal(got, data) {
				return nil, fmt.Errorf("rate %.4f: lossy roundtrip", rate)
			}
		}
		positions, err := core.DecompressChild(pforForm, "positions")
		if err != nil {
			return nil, err
		}
		forSz, err := storage.EncodedSize(forForm)
		if err != nil {
			return nil, err
		}
		pforSz, err := storage.EncodedSize(pforForm)
		if err != nil {
			return nil, err
		}
		wins := "-"
		if pforSz < forSz {
			wins = "yes"
		}
		t.AddRow(
			fmt.Sprintf("%.4f", rate),
			fmt.Sprintf("%d", forSz),
			fmt.Sprintf("%d", pforSz),
			fmt.Sprintf("%d", len(positions)),
			f2(float64(pforSz)/float64(forSz)),
			wins,
		)
	}
	t.Notes = append(t.Notes,
		"a single 2^38 outlier forces FOR's offsets to ≈38 bits for the whole segment; patches keep the base narrow",
		"at rate 0 the width chooser still trims the natural tail of the offset distribution, so PFOR ≈ FOR (ratio ≈ 1)",
		fmt.Sprintf("random walk ±10/step with spikes of ≈2^38, segment length %d, n = %d", segLen, cfg.N),
	)
	return t, nil
}
