package bench

import (
	"fmt"

	"lwcomp/internal/core"
	"lwcomp/internal/exec"
	"lwcomp/internal/scheme"
	"lwcomp/internal/vec"
	"lwcomp/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "B",
		Title: "Algorithm 1: RLE decompression as columnar operators",
		Claim: `§II-A: "just very few of these [columnar operations] are already enough to express a decompression algorithm for RLE".`,
		Run:   runExpB,
	})
	register(Experiment{
		ID:    "D",
		Title: "Algorithm 2: FOR decompression as columnar operators",
		Claim: `§II-B: "the columnar representation allows for a columnar decompression of FOR".`,
		Run:   runExpD,
	})
}

// planRows times kernel vs literal plan vs fused plan for one form
// and appends rows to t.
func planRows(t *Table, label string, f *core.Form, want []int64, reps int) error {
	n := len(want)
	kernelT, err := timeBest(reps, func() error {
		got, err := core.Decompress(f)
		if err != nil {
			return err
		}
		if !vec.Equal(got, want) {
			return fmt.Errorf("kernel mismatch")
		}
		return nil
	})
	if err != nil {
		return err
	}
	plan, _, err := core.PlanOf(f)
	if err != nil {
		return err
	}
	planOps := len(plan.Nodes)
	planT, err := timeBest(reps, func() error {
		got, err := core.DecompressViaPlan(f, false)
		if err != nil {
			return err
		}
		if !vec.Equal(got, want) {
			return fmt.Errorf("plan mismatch")
		}
		return nil
	})
	if err != nil {
		return err
	}
	fusedOps := len(exec.Fuse(plan).Nodes)
	fusedT, err := timeBest(reps, func() error {
		got, err := core.DecompressViaPlan(f, true)
		if err != nil {
			return err
		}
		if !vec.Equal(got, want) {
			return fmt.Errorf("fused plan mismatch")
		}
		return nil
	})
	if err != nil {
		return err
	}
	t.AddRow(label, "kernel", "-", melems(n, kernelT), "1.00")
	t.AddRow(label, "plan (literal Alg.)", fmt.Sprintf("%d ops", planOps),
		melems(n, planT), f2(planT.Seconds()/kernelT.Seconds()))
	t.AddRow(label, "plan (idioms fused)", fmt.Sprintf("%d ops", fusedOps),
		melems(n, fusedT), f2(fusedT.Seconds()/kernelT.Seconds()))
	return nil
}

func runExpB(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "B",
		Title: "Algorithm 1: RLE decompression as columnar operators",
		Claim: "operator plan = kernel output bit-for-bit; fusion recovers most of the kernel's speed",
		Headers: []string{
			"avg run", "route", "plan size", "Melem/s", "slowdown vs kernel",
		},
	}
	for _, runLen := range []float64{8, 64, 512} {
		data := workload.Runs(cfg.N, runLen, 1<<16, cfg.Seed)
		f, err := scheme.RLE{}.Compress(data)
		if err != nil {
			return nil, err
		}
		if err := planRows(t, fmt.Sprintf("%.0f", runLen), f, data, cfg.Reps); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"plan route executes the paper's Algorithm 1 line by line (PrefixSum, PopBack, Constant, Scatter, PrefixSum, Gather)",
		fmt.Sprintf("n = %d", cfg.N),
	)
	return t, nil
}

func runExpD(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "D",
		Title: "Algorithm 2: FOR decompression as columnar operators",
		Claim: "operator plan = kernel output bit-for-bit; fusion recovers most of the kernel's speed",
		Headers: []string{
			"seg len", "route", "plan size", "Melem/s", "slowdown vs kernel",
		},
	}
	for _, segLen := range []int{256, 1024, 4096} {
		data := workload.RandomWalk(cfg.N, 20, 1<<30, cfg.Seed)
		f, err := (scheme.FOR{SegLen: segLen}).Compress(data)
		if err != nil {
			return nil, err
		}
		if err := planRows(t, fmt.Sprintf("%d", segLen), f, data, cfg.Reps); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"plan route executes the paper's Algorithm 2 line by line (Constant, PrefixSum, Elementwise ÷, Gather, Elementwise +)",
		fmt.Sprintf("n = %d", cfg.N),
	)
	return t, nil
}
