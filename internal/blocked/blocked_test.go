package blocked

import (
	"errors"
	"testing"

	"lwcomp/internal/core"
	_ "lwcomp/internal/scheme" // register schemes
	"lwcomp/internal/workload"
)

func equal(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEncodePartitioning(t *testing.T) {
	data := workload.RandomWalk(10_000, 8, 1<<20, 1)
	col, err := Encode(data, EncodeOptions{BlockSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if col.NumBlocks() != 3 {
		t.Fatalf("blocks = %d, want 3", col.NumBlocks())
	}
	wantCounts := []int{4096, 4096, 10_000 - 2*4096}
	for i, b := range col.Blocks {
		if b.Count != wantCounts[i] {
			t.Fatalf("block %d count = %d, want %d", i, b.Count, wantCounts[i])
		}
		if !b.HasStats {
			t.Fatalf("block %d missing stats", i)
		}
	}
	if err := col.Validate(); err != nil {
		t.Fatal(err)
	}
	back, err := col.Decompress()
	if err != nil || !equal(back, data) {
		t.Fatalf("roundtrip: %v", err)
	}
}

func TestBlockStatsMatchData(t *testing.T) {
	data := workload.RandomWalk(8192, 16, 0, 2)
	col, err := Encode(data, EncodeOptions{BlockSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range col.Blocks {
		lo, hi := data[b.Start], data[b.Start]
		for _, v := range data[b.Start : b.Start+int64(b.Count)] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if b.Min != lo || b.Max != hi {
			t.Fatalf("block %d stats [%d,%d], data says [%d,%d]", i, b.Min, b.Max, lo, hi)
		}
	}
}

func TestPointLookupAcrossBoundaries(t *testing.T) {
	data := workload.Sorted(5000, 1<<30, 3)
	col, err := Encode(data, EncodeOptions{BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range []int64{0, 511, 512, 1023, 1024, 4999} {
		got, err := col.PointLookup(row)
		if err != nil || got != data[row] {
			t.Fatalf("PointLookup(%d) = %d, want %d (%v)", row, got, data[row], err)
		}
	}
	if _, err := col.PointLookup(-1); err == nil {
		t.Fatal("negative row accepted")
	}
	if _, err := col.PointLookup(5000); err == nil {
		t.Fatal("row == N accepted")
	}
}

func TestFromFormDelegates(t *testing.T) {
	data := workload.Runs(4000, 32, 1<<10, 4)
	s, ok := core.Lookup("rle")
	if !ok {
		t.Fatal("rle not registered")
	}
	f, err := s.Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, withStats := range []bool{false, true} {
		col, err := FromForm(f, withStats)
		if err != nil {
			t.Fatal(err)
		}
		if col.NumBlocks() != 1 || col.Blocks[0].HasStats != withStats {
			t.Fatalf("withStats=%v: blocks=%d hasStats=%v", withStats, col.NumBlocks(), col.Blocks[0].HasStats)
		}
		back, err := col.Decompress()
		if err != nil || !equal(back, data) {
			t.Fatalf("withStats=%v roundtrip: %v", withStats, err)
		}
	}
	if _, err := FromForm(nil, false); err == nil {
		t.Fatal("FromForm(nil) accepted")
	}
}

func TestValidateRejectsBrokenIndex(t *testing.T) {
	data := workload.RandomWalk(2048, 8, 1<<20, 5)
	col, err := Encode(data, EncodeOptions{BlockSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	broken := &Column{N: col.N, BlockSize: col.BlockSize}
	broken.Blocks = append([]Block{}, col.Blocks...)
	broken.Blocks[1].Start = 999
	if err := broken.Validate(); !errors.Is(err, core.ErrCorruptForm) {
		t.Fatalf("gapped index: err = %v", err)
	}
	broken.Blocks[1].Start = 1024
	broken.N = 4096
	if err := broken.Validate(); !errors.Is(err, core.ErrCorruptForm) {
		t.Fatalf("short cover: err = %v", err)
	}
	broken.N = 2048
	broken.Blocks[0].Min, broken.Blocks[0].Max = 5, -5
	if err := broken.Validate(); !errors.Is(err, core.ErrCorruptForm) {
		t.Fatalf("inverted stats: err = %v", err)
	}
}

func TestBuilderPartialBlocks(t *testing.T) {
	b := NewBuilder(EncodeOptions{BlockSize: 100})
	var all []int64
	for i := 0; i < 7; i++ {
		batch := workload.UniformBits(33, 12, int64(i))
		all = append(all, batch...)
		if err := b.Append(batch); err != nil {
			t.Fatal(err)
		}
	}
	col, err := b.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if col.N != len(all) {
		t.Fatalf("N = %d, want %d", col.N, len(all))
	}
	if col.NumBlocks() != 3 { // 231 values / 100 per block
		t.Fatalf("blocks = %d, want 3", col.NumBlocks())
	}
	if err := col.Validate(); err != nil {
		t.Fatal(err)
	}
	back, err := col.Decompress()
	if err != nil || !equal(back, all) {
		t.Fatalf("roundtrip: %v", err)
	}
}

func TestBuilderEmptyFlush(t *testing.T) {
	b := NewBuilder(EncodeOptions{})
	col, err := b.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if col.N != 0 {
		t.Fatalf("N = %d", col.N)
	}
	if s, err := col.Sum(); err != nil || s != 0 {
		t.Fatalf("Sum = %d (%v)", s, err)
	}
}

func TestDescribeSingleBlockMatchesForm(t *testing.T) {
	data := workload.UniformBits(1000, 8, 6)
	col, err := Encode(data, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if col.Describe() != col.Blocks[0].Form.Describe() {
		t.Fatalf("single-block Describe = %q, form = %q",
			col.Describe(), col.Blocks[0].Form.Describe())
	}
}
