// Package blocked implements the block-partitioned column handle
// behind the public lwcomp.Column API.
//
// The paper argues that compression schemes decompose into
// constituents so the right composite can be re-composed per data
// region. This package applies that thesis at storage granularity:
// the input column is partitioned into fixed-size blocks, the
// composite-scheme analyzer runs independently on every block
// (concurrently, bounded by a worker count), and each block records
// the [min, max] of its raw values. Queries then aggregate across
// blocks and use the stats to skip blocks entirely — a SelectRange
// that misses a block's [min, max] never decodes it, and a
// PointLookup binary-searches the block index.
package blocked

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"lwcomp/internal/column"
	"lwcomp/internal/core"
	"lwcomp/internal/query"
	"lwcomp/internal/scheme"
)

// DefaultBlockSize is the block length used when a caller asks for
// blocking without choosing a size. 64Ki values keeps per-block
// analyzer runs cheap while leaving enough data for run/model
// structure to show.
const DefaultBlockSize = 1 << 16

// Block is one fixed-size slice of the column: its compressed form,
// its position, and the raw-value stats queries prune with.
type Block struct {
	// Form is the block's compressed form, chosen independently of
	// every other block.
	Form *core.Form
	// Start is the row index of the block's first element.
	Start int64
	// Count is the number of elements in the block.
	Count int
	// Min and Max are the extreme raw values of the block; valid
	// only when HasStats is set.
	Min, Max int64
	// HasStats reports whether Min/Max were recorded. Blocks adopted
	// from v1 forms without re-reading the data leave it unset, which
	// disables skipping (never correctness).
	HasStats bool
}

// Column is a compressed column partitioned into blocks.
type Column struct {
	// N is the total logical length.
	N int
	// BlockSize is the partition size used at encode time; 0 means
	// the column is a single unpartitioned block.
	BlockSize int
	// Blocks holds the per-block forms in row order.
	Blocks []Block
	// Parallelism is the worker bound used for encode, kept so
	// Decompress can mirror it. 0 means GOMAXPROCS.
	Parallelism int
}

// EncodeOptions controls Encode and Builder.
type EncodeOptions struct {
	// BlockSize partitions the input; <= 0 encodes the whole column
	// as one block.
	BlockSize int
	// Scheme, when non-nil, compresses every block with this fixed
	// scheme instead of running the analyzer.
	Scheme core.Scheme
	// CostBudget and SampleSize tune the per-block analyzer search
	// (see core.Analyzer).
	CostBudget float64
	// SampleSize caps the per-block analyzer sample; 0 means 65536.
	SampleSize int
	// Parallelism bounds concurrent block encodes; <= 0 means
	// GOMAXPROCS.
	Parallelism int
	// Extra appends candidates to the per-block analyzer space.
	Extra []core.Candidate
}

func (o EncodeOptions) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// encodeBlock compresses one block under the options and returns its
// Block record with stats.
func encodeBlock(src []int64, start int64, opt EncodeOptions) (Block, error) {
	st := column.Analyze(src)
	b := Block{Start: start, Count: len(src), Min: st.Min, Max: st.Max, HasStats: true}
	var f *core.Form
	var err error
	if opt.Scheme != nil {
		f, err = opt.Scheme.Compress(src)
	} else {
		sample := opt.SampleSize
		if sample == 0 {
			sample = 1 << 16
		}
		a := &core.Analyzer{
			Candidates: append(scheme.DefaultCandidates(st), opt.Extra...),
			CostBudget: opt.CostBudget,
			SampleSize: sample,
		}
		f, err = a.BestForm(src)
	}
	if err != nil {
		return Block{}, fmt.Errorf("blocked: block at row %d: %w", start, err)
	}
	b.Form = f
	return b, nil
}

// Encode partitions src into blocks, compresses every block
// independently (the per-block re-composition the paper's
// decomposition view enables), and returns the handle. Blocks are
// encoded concurrently, bounded by the option's parallelism.
func Encode(src []int64, opt EncodeOptions) (*Column, error) {
	col := &Column{N: len(src), Parallelism: opt.Parallelism}
	bs := opt.BlockSize
	if bs <= 0 || bs >= len(src) {
		// Whole column as one block (also the empty-column path so
		// that queries keep the free functions' exact semantics).
		b, err := encodeBlock(src, 0, opt)
		if err != nil {
			return nil, err
		}
		col.Blocks = []Block{b}
		return col, nil
	}
	col.BlockSize = bs

	nblocks := (len(src) + bs - 1) / bs
	col.Blocks = make([]Block, nblocks)
	workers := opt.workers()
	if workers > nblocks {
		workers = nblocks
	}
	var (
		wg    sync.WaitGroup
		next  = make(chan int)
		errMu sync.Mutex
		first error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				start := i * bs
				end := start + bs
				if end > len(src) {
					end = len(src)
				}
				b, err := encodeBlock(src[start:end], int64(start), opt)
				if err != nil {
					errMu.Lock()
					if first == nil {
						first = err
					}
					errMu.Unlock()
					continue
				}
				col.Blocks[i] = b
			}
		}()
	}
	for i := 0; i < nblocks; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if first != nil {
		return nil, first
	}
	return col, nil
}

// FromForm adopts an existing (v1-style) form as a single-block
// column. withStats additionally computes the block's [min, max]
// from the form (enabling skipping); without it the column answers
// every query by delegation, which keeps adoption free.
func FromForm(f *core.Form, withStats bool) (*Column, error) {
	if f == nil {
		return nil, fmt.Errorf("blocked: FromForm(nil)")
	}
	b := Block{Form: f, Start: 0, Count: f.N}
	if withStats && f.N > 0 {
		lo, hi, err := query.MinMax(f)
		if err != nil {
			return nil, err
		}
		b.Min, b.Max, b.HasStats = lo, hi, true
	}
	return &Column{N: f.N, Blocks: []Block{b}}, nil
}

// NumBlocks returns the block count.
func (c *Column) NumBlocks() int { return len(c.Blocks) }

// workers mirrors the encode-time parallelism bound.
func (c *Column) workers() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Decompress reconstructs the full column, decoding blocks
// concurrently into one preallocated result.
func (c *Column) Decompress() ([]int64, error) {
	out := make([]int64, c.N)
	workers := c.workers()
	if workers > len(c.Blocks) {
		workers = len(c.Blocks)
	}
	if workers <= 1 {
		for i := range c.Blocks {
			if err := c.decompressBlockInto(out, i); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	var (
		wg    sync.WaitGroup
		next  = make(chan int)
		errMu sync.Mutex
		first error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := c.decompressBlockInto(out, i); err != nil {
					errMu.Lock()
					if first == nil {
						first = err
					}
					errMu.Unlock()
				}
			}
		}()
	}
	for i := range c.Blocks {
		next <- i
	}
	close(next)
	wg.Wait()
	if first != nil {
		return nil, first
	}
	return out, nil
}

func (c *Column) decompressBlockInto(out []int64, i int) error {
	b := &c.Blocks[i]
	vals, err := core.Decompress(b.Form)
	if err != nil {
		return err
	}
	if len(vals) != b.Count {
		return fmt.Errorf("%w: block %d decoded %d values, index says %d",
			core.ErrCorruptForm, i, len(vals), b.Count)
	}
	copy(out[b.Start:], vals)
	return nil
}

// Sum returns the exact column sum, aggregated block by block.
func (c *Column) Sum() (int64, error) {
	var total int64
	for i := range c.Blocks {
		s, err := query.Sum(c.Blocks[i].Form)
		if err != nil {
			return 0, err
		}
		total += s
	}
	return total, nil
}

// Min returns the exact column minimum. Blocks with recorded stats
// answer from the index; others delegate to the form.
func (c *Column) Min() (int64, error) {
	if c.N == 0 {
		return 0, fmt.Errorf("query: Min of empty column")
	}
	have := false
	var m int64
	for i := range c.Blocks {
		b := &c.Blocks[i]
		if b.Count == 0 {
			continue
		}
		v := b.Min
		if !b.HasStats {
			var err error
			v, err = query.Min(b.Form)
			if err != nil {
				return 0, err
			}
		}
		if !have || v < m {
			m, have = v, true
		}
	}
	if !have {
		return 0, fmt.Errorf("query: Min of empty column")
	}
	return m, nil
}

// Max returns the exact column maximum, symmetric with Min.
func (c *Column) Max() (int64, error) {
	if c.N == 0 {
		return 0, fmt.Errorf("query: Max of empty column")
	}
	have := false
	var m int64
	for i := range c.Blocks {
		b := &c.Blocks[i]
		if b.Count == 0 {
			continue
		}
		v := b.Max
		if !b.HasStats {
			var err error
			v, err = query.Max(b.Form)
			if err != nil {
				return 0, err
			}
		}
		if !have || v > m {
			m, have = v, true
		}
	}
	if !have {
		return 0, fmt.Errorf("query: Max of empty column")
	}
	return m, nil
}

// blockClass is the stat-pruning trichotomy for a range query.
type blockClass uint8

const (
	blockMiss blockClass = iota // [min,max] disjoint from [lo,hi]
	blockAll                    // [min,max] inside [lo,hi]
	blockPart                   // must consult the form
)

func (b *Block) classify(lo, hi int64) blockClass {
	if !b.HasStats {
		return blockPart
	}
	if b.Max < lo || b.Min > hi {
		return blockMiss
	}
	if b.Min >= lo && b.Max <= hi {
		return blockAll
	}
	return blockPart
}

// CountRange counts elements in [lo, hi]. Blocks entirely outside
// the range contribute 0 and blocks entirely inside contribute their
// size, both in O(1) from the index; only straddling blocks consult
// their form.
func (c *Column) CountRange(lo, hi int64) (int64, error) {
	if lo > hi {
		return 0, nil
	}
	var total int64
	for i := range c.Blocks {
		b := &c.Blocks[i]
		switch b.classify(lo, hi) {
		case blockMiss:
		case blockAll:
			total += int64(b.Count)
		case blockPart:
			n, err := query.CountRange(b.Form, lo, hi)
			if err != nil {
				return 0, err
			}
			total += n
		}
	}
	return total, nil
}

// SelectRange returns the row positions of elements in [lo, hi], in
// ascending order. A block whose [min, max] misses the range is
// never decoded; a block entirely inside emits its whole row span
// without decoding.
func (c *Column) SelectRange(lo, hi int64) ([]int64, error) {
	rows := []int64{}
	if lo > hi {
		return rows, nil
	}
	for i := range c.Blocks {
		b := &c.Blocks[i]
		switch b.classify(lo, hi) {
		case blockMiss:
		case blockAll:
			for r := int64(0); r < int64(b.Count); r++ {
				rows = append(rows, b.Start+r)
			}
		case blockPart:
			local, err := query.SelectRange(b.Form, lo, hi)
			if err != nil {
				return nil, err
			}
			if b.Start == 0 {
				rows = append(rows, local...)
				continue
			}
			for _, r := range local {
				rows = append(rows, b.Start+r)
			}
		}
	}
	return rows, nil
}

// SkipStats reports how block skipping would treat a range query:
// blocks skipped outright, emitted whole, and consulted. Benchmarks
// and Describe use it to make pruning observable.
func (c *Column) SkipStats(lo, hi int64) (skipped, whole, consulted int) {
	for i := range c.Blocks {
		switch c.Blocks[i].classify(lo, hi) {
		case blockMiss:
			skipped++
		case blockAll:
			whole++
		case blockPart:
			consulted++
		}
	}
	return
}

// PointLookup returns one element by row position: a binary search
// over the block index, then the block form's random-access path.
func (c *Column) PointLookup(row int64) (int64, error) {
	if row < 0 || row >= int64(c.N) {
		return 0, fmt.Errorf("query: row %d out of range [0, %d)", row, c.N)
	}
	// First block whose Start is > row, minus one.
	i := sort.Search(len(c.Blocks), func(i int) bool { return c.Blocks[i].Start > row }) - 1
	if i < 0 || row >= c.Blocks[i].Start+int64(c.Blocks[i].Count) {
		return 0, fmt.Errorf("%w: block index does not cover row %d", core.ErrCorruptForm, row)
	}
	return query.PointLookup(c.Blocks[i].Form, row-c.Blocks[i].Start)
}

// ApproxSum brackets the column sum by aggregating per-block model
// bounds (interval arithmetic distributes over the block partition).
func (c *Column) ApproxSum() (query.Interval, error) {
	var total query.Interval
	for i := range c.Blocks {
		iv, err := query.ApproxSum(c.Blocks[i].Form)
		if err != nil {
			return query.Interval{}, err
		}
		total.Lower += iv.Lower
		total.Upper += iv.Upper
	}
	return total, nil
}

// EncodedBits sums the analytic payload size of every block form.
func (c *Column) EncodedBits() uint64 {
	var total uint64
	for i := range c.Blocks {
		total += c.Blocks[i].Form.PayloadBits()
	}
	return total
}

// BlockSchemes returns each block's scheme expression, in row order.
func (c *Column) BlockSchemes() []string {
	out := make([]string, len(c.Blocks))
	for i := range c.Blocks {
		out[i] = c.Blocks[i].Form.Describe()
	}
	return out
}

// Describe renders the column's structure. A single-block column
// describes exactly like its form; a partitioned column lists the
// block size and each distinct scheme with the block ranges it won,
// making per-block re-composition directly observable.
func (c *Column) Describe() string {
	if len(c.Blocks) == 1 && c.BlockSize == 0 {
		return c.Blocks[0].Form.Describe()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "blocked(n=%d, block=%d, blocks=%d)", c.N, c.BlockSize, len(c.Blocks))
	for _, g := range c.schemeRuns() {
		if g.from == g.to {
			fmt.Fprintf(&b, "\n  [%d] %s", g.from, g.desc)
		} else {
			fmt.Fprintf(&b, "\n  [%d-%d] %s", g.from, g.to, g.desc)
		}
	}
	return b.String()
}

type schemeRun struct {
	from, to int
	desc     string
}

// schemeRuns groups consecutive blocks with identical scheme
// expressions.
func (c *Column) schemeRuns() []schemeRun {
	var runs []schemeRun
	for i := range c.Blocks {
		desc := c.Blocks[i].Form.Describe()
		if len(runs) > 0 && runs[len(runs)-1].desc == desc {
			runs[len(runs)-1].to = i
			continue
		}
		runs = append(runs, schemeRun{from: i, to: i, desc: desc})
	}
	return runs
}

// Validate checks the handle structurally: the block index must tile
// [0, N) exactly and every form must validate.
func (c *Column) Validate() error {
	var next int64
	for i := range c.Blocks {
		b := &c.Blocks[i]
		if b.Start != next {
			return fmt.Errorf("%w: block %d starts at %d, want %d", core.ErrCorruptForm, i, b.Start, next)
		}
		if b.Count < 0 {
			return fmt.Errorf("%w: block %d has negative count", core.ErrCorruptForm, i)
		}
		if b.Form == nil {
			return fmt.Errorf("%w: block %d has no form", core.ErrCorruptForm, i)
		}
		if b.Form.N != b.Count {
			return fmt.Errorf("%w: block %d form length %d, index says %d",
				core.ErrCorruptForm, i, b.Form.N, b.Count)
		}
		if b.HasStats && b.Min > b.Max {
			return fmt.Errorf("%w: block %d stats min %d > max %d", core.ErrCorruptForm, i, b.Min, b.Max)
		}
		if err := b.Form.Validate(); err != nil {
			return err
		}
		next += int64(b.Count)
	}
	if next != int64(c.N) {
		return fmt.Errorf("%w: blocks cover %d rows, column declares %d", core.ErrCorruptForm, next, c.N)
	}
	return nil
}
