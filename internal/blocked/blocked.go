package blocked

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"lwcomp/internal/core"
	"lwcomp/internal/query"
	"lwcomp/internal/scheme"
	"lwcomp/internal/sel"
)

// DefaultBlockSize is the block length used when a caller asks for
// blocking without choosing a size. 64Ki values keeps per-block
// analyzer runs cheap while leaving enough data for run/model
// structure to show.
const DefaultBlockSize = 1 << 16

// Block is one fixed-size slice of the column: its compressed form,
// its position, and the raw-value stats queries prune with.
type Block struct {
	// Form is the block's compressed form, chosen independently of
	// every other block.
	Form *core.Form
	// Start is the row index of the block's first element.
	Start int64
	// Count is the number of elements in the block.
	Count int
	// Min and Max are the extreme raw values of the block; valid
	// only when HasStats is set.
	Min, Max int64
	// HasStats reports whether Min/Max were recorded. Blocks adopted
	// from v1 forms without re-reading the data leave it unset, which
	// disables skipping (never correctness).
	HasStats bool
	// Tombstone marks a block whose payload was lost for good and
	// replaced by an explicit placeholder during salvage repair. A
	// tombstoned block has no form and no payload; every fetch fails
	// fast with ErrTombstone, and a degraded scan skips exactly its
	// row range. Set through MarkTombstone, never directly.
	Tombstone bool
	// TombstoneReason records why the block was tombstoned — the
	// condemning error of the generation that lost it. Persisted in
	// the container index so the reason survives reopen.
	TombstoneReason string
}

// BlockSource supplies block forms on demand for columns whose
// payloads live outside memory (file-backed containers). A column
// with a Source may leave Block.Form nil; query paths then fetch the
// form through the source at first touch and drop it afterwards, so
// cold blocks never stay resident.
//
// Implementations must be safe for concurrent use: the parallel scan
// paths fetch straddling blocks from multiple goroutines. An
// implementation that also satisfies io.Closer is closed by
// Column.Close.
type BlockSource interface {
	// BlockForm returns the decoded form of block i. The returned
	// form must not be mutated by the caller; the source may hand the
	// same form to concurrent callers.
	BlockForm(i int) (*core.Form, error)
}

// BlockPrefetcher is the optional warm-ahead face of a BlockSource:
// PrefetchBlock hints that block i's payload will be needed soon, so
// the source can stage it (typically into the storage block cache)
// while the caller is busy decoding the current block. It must be
// asynchronous and best-effort — dropping a hint is always correct —
// and must accept a nil ctx, meaning no cancellation. The scan paths
// announce the next undecided block through it; sources without the
// method simply never see the hints.
type BlockPrefetcher interface {
	PrefetchBlock(ctx context.Context, i int)
}

// Column is a compressed column partitioned into blocks.
type Column struct {
	// N is the total logical length.
	N int
	// BlockSize is the partition size used at encode time; 0 means
	// the column is a single unpartitioned block.
	BlockSize int
	// Blocks holds the per-block index in row order. For in-memory
	// columns every Block carries its Form; for lazily opened columns
	// the forms are nil and fetched through Source.
	Blocks []Block
	// Parallelism is the worker bound used for encode, kept so
	// Decompress can mirror it. 0 means GOMAXPROCS.
	Parallelism int
	// Source, when non-nil, supplies forms for blocks whose Form is
	// nil (the lazy, file-backed path). In-memory columns leave it
	// nil.
	Source BlockSource

	// quarMu guards quar, the per-block quarantine ledger: block index
	// → the permanent error that condemned it. Quarantined blocks fail
	// fast on every later touch instead of re-fetching payload bytes
	// that are known bad (see faulttolerance.go).
	quarMu sync.Mutex
	quar   map[int]error
}

// form returns block i's form: the resident one when present,
// otherwise fetched from the column's Source. The resident branch is
// the hot path and stays allocation-free.
func (c *Column) form(i int) (*core.Form, error) {
	b := &c.Blocks[i]
	if b.Form != nil {
		return b.Form, nil
	}
	// Quarantine (which includes tombstones) is checked before the
	// source so a condemned block fails fast whether the column is
	// lazy or in-memory, instead of re-reading payload bytes that are
	// known bad — or, for a tombstone, do not exist at all.
	if qerr, ok := c.QuarantineError(i); ok {
		return nil, fmt.Errorf("%w: block %d: %w", ErrQuarantined, i, qerr)
	}
	if c.Source == nil {
		return nil, fmt.Errorf("%w: block %d has no form and the column has no source",
			core.ErrCorruptForm, i)
	}
	f, err := c.Source.BlockForm(i)
	if err != nil {
		if IsPermanent(err) {
			c.quarantine(i, err)
		}
		return nil, err
	}
	if f == nil || f.N != b.Count {
		err := fmt.Errorf("%w: block %d fetched form does not match index count %d",
			core.ErrCorruptForm, i, b.Count)
		c.quarantine(i, err)
		return nil, err
	}
	return f, nil
}

// BlockForm returns the decoded form of block i — the resident form
// for in-memory columns, a fetch through the source for lazily
// opened ones. Callers must not mutate the result.
func (c *Column) BlockForm(i int) (*core.Form, error) {
	if i < 0 || i >= len(c.Blocks) {
		return nil, fmt.Errorf("blocked: block %d out of range [0, %d)", i, len(c.Blocks))
	}
	return c.form(i)
}

// Prefetch hints that block i will be needed soon, forwarding to the
// column's source when it can warm blocks ahead of need. Resident
// blocks, quarantined blocks, and sources without a prefetcher make
// it a no-op; ctx may be nil (no cancellation). The scan paths call
// it for the next undecided block while the current one decodes, so
// cold payload reads overlap decode instead of serializing with it.
func (c *Column) Prefetch(ctx context.Context, i int) {
	if i < 0 || i >= len(c.Blocks) || c.Blocks[i].Form != nil {
		return
	}
	p, ok := c.Source.(BlockPrefetcher)
	if !ok {
		return
	}
	if _, quarantined := c.QuarantineError(i); quarantined {
		return
	}
	p.PrefetchBlock(ctx, i)
}

// Close releases the column's backing source (an open container
// file, for example). It is a no-op for in-memory columns, so callers
// can defer it unconditionally.
func (c *Column) Close() error {
	if closer, ok := c.Source.(io.Closer); ok {
		return closer.Close()
	}
	return nil
}

// EncodeOptions controls Encode and Builder.
type EncodeOptions struct {
	// BlockSize partitions the input; <= 0 encodes the whole column
	// as one block.
	BlockSize int
	// Scheme, when non-nil, compresses every block with this fixed
	// scheme instead of running the analyzer.
	Scheme core.Scheme
	// CostBudget and SampleSize tune the per-block analyzer search
	// (see core.Analyzer).
	CostBudget float64
	// SampleSize caps the per-block analyzer sample; 0 means 65536.
	SampleSize int
	// Parallelism bounds concurrent block encodes; <= 0 means
	// GOMAXPROCS.
	Parallelism int
	// Extra appends candidates to the per-block analyzer space.
	Extra []core.Candidate
	// TrialK bounds how many of the top estimate-ranked candidates
	// the per-block analyzer trial-compresses; 0 means
	// core.DefaultTrialK.
	TrialK int
	// Exhaustive disables the analyzer's estimate pruning,
	// trial-compressing every candidate (ground truth).
	Exhaustive bool
}

func (o EncodeOptions) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// encodeBlock compresses one block under the options and returns its
// Block record with stats. The one-pass stats collected here feed
// both the block index ([min, max] skipping) and the analyzer's
// size-estimating candidate ranking, so a block is scanned for
// statistics exactly once. Temporaries come from s: workers that
// encode many blocks reuse one scratch arena across all of them.
func encodeBlock(src []int64, start int64, opt EncodeOptions, s *core.Scratch) (Block, error) {
	b := Block{Start: start, Count: len(src), HasStats: true}
	var f *core.Form
	var err error
	if opt.Scheme != nil {
		// Fixed scheme: the analyzer never runs, so the block index
		// needs only the extremes — skip the full collector, whose
		// histograms would otherwise cost about as much as the encode
		// itself.
		for i, v := range src {
			if i == 0 || v < b.Min {
				b.Min = v
			}
			if i == 0 || v > b.Max {
				b.Max = v
			}
		}
		f, err = core.CompressScratch(opt.Scheme, src, s)
	} else {
		st := core.CollectStats(src, s)
		b.Min, b.Max = st.Min, st.Max
		sample := opt.SampleSize
		if sample == 0 {
			sample = 1 << 16
		}
		a := &core.Analyzer{
			Candidates: append(scheme.DefaultCandidates(&st), opt.Extra...),
			CostBudget: opt.CostBudget,
			SampleSize: sample,
			TrialK:     opt.TrialK,
			Exhaustive: opt.Exhaustive,
			Stats:      &st,
			Scratch:    s,
		}
		f, err = a.BestForm(src)
		st.ReleaseSeg(s)
	}
	if err != nil {
		return Block{}, fmt.Errorf("blocked: block at row %d: %w", start, err)
	}
	b.Form = f
	return b, nil
}

// Encode partitions src into blocks, compresses every block
// independently (the per-block re-composition the paper's
// decomposition view enables), and returns the handle. Blocks are
// encoded concurrently, bounded by the option's parallelism.
func Encode(src []int64, opt EncodeOptions) (*Column, error) {
	col := &Column{N: len(src), Parallelism: opt.Parallelism}
	bs := opt.BlockSize
	if bs <= 0 || bs >= len(src) {
		// Whole column as one block (also the empty-column path so
		// that queries keep the free functions' exact semantics).
		s := core.GetScratch()
		b, err := encodeBlock(src, 0, opt, s)
		s.Release()
		if err != nil {
			return nil, err
		}
		col.Blocks = []Block{b}
		return col, nil
	}
	col.BlockSize = bs

	nblocks := (len(src) + bs - 1) / bs
	col.Blocks = make([]Block, nblocks)
	workers := opt.workers()
	if workers > nblocks {
		workers = nblocks
	}
	var (
		wg    sync.WaitGroup
		next  = make(chan int)
		errMu sync.Mutex
		first error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := core.GetScratch()
			defer s.Release()
			for i := range next {
				start := i * bs
				end := start + bs
				if end > len(src) {
					end = len(src)
				}
				b, err := encodeBlock(src[start:end], int64(start), opt, s)
				if err != nil {
					errMu.Lock()
					if first == nil {
						first = err
					}
					errMu.Unlock()
					continue
				}
				col.Blocks[i] = b
			}
		}()
	}
	for i := 0; i < nblocks; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if first != nil {
		return nil, first
	}
	return col, nil
}

// FromForm adopts an existing (v1-style) form as a single-block
// column. withStats additionally computes the block's [min, max]
// from the form (enabling skipping); without it the column answers
// every query by delegation, which keeps adoption free.
func FromForm(f *core.Form, withStats bool) (*Column, error) {
	if f == nil {
		return nil, fmt.Errorf("blocked: FromForm(nil)")
	}
	b := Block{Form: f, Start: 0, Count: f.N}
	if withStats && f.N > 0 {
		lo, hi, err := query.MinMax(f)
		if err != nil {
			return nil, err
		}
		b.Min, b.Max, b.HasStats = lo, hi, true
	}
	return &Column{N: f.N, Blocks: []Block{b}}, nil
}

// NumBlocks returns the block count.
func (c *Column) NumBlocks() int { return len(c.Blocks) }

// workers mirrors the encode-time parallelism bound.
func (c *Column) workers() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Decompress reconstructs the full column, decoding blocks
// concurrently into one preallocated result.
func (c *Column) Decompress() ([]int64, error) {
	out := make([]int64, c.N)
	if err := c.DecompressInto(out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecompressInto reconstructs the column into dst, whose length must
// equal c.N. Blocks decode concurrently (bounded by the column's
// parallelism), each worker drawing temporaries from a pooled scratch
// arena, so a reused destination makes steady-state decode
// allocation-free.
func (c *Column) DecompressInto(dst []int64) error {
	if len(dst) != c.N {
		return fmt.Errorf("%w: DecompressInto dst length %d, column declares %d",
			core.ErrCorruptForm, len(dst), c.N)
	}
	workers := c.workers()
	if workers > len(c.Blocks) {
		workers = len(c.Blocks)
	}
	if workers <= 1 {
		s := core.GetScratch()
		defer s.Release()
		for i := range c.Blocks {
			if i+1 < len(c.Blocks) {
				c.Prefetch(nil, i+1)
			}
			if err := c.decompressBlockInto(dst, i, s); err != nil {
				return err
			}
		}
		return nil
	}
	return ParallelFor(workers, len(c.Blocks), func(i int) error {
		if i+1 < len(c.Blocks) {
			c.Prefetch(nil, i+1)
		}
		s := core.GetScratch()
		defer s.Release()
		return c.decompressBlockInto(dst, i, s)
	})
}

func (c *Column) decompressBlockInto(out []int64, i int, s *core.Scratch) error {
	b := &c.Blocks[i]
	f, err := c.form(i)
	if err != nil {
		return err
	}
	if f.N != b.Count {
		return fmt.Errorf("%w: block %d form does not match index count %d",
			core.ErrCorruptForm, i, b.Count)
	}
	if err := core.DecompressInto(f, out[b.Start:b.Start+int64(b.Count)], s); err != nil {
		return fmt.Errorf("blocked: block %d: %w", i, err)
	}
	return nil
}

// Sum returns the exact column sum, aggregated block by block.
// Blocks are summed concurrently (bounded by the column's
// parallelism); wrapping int64 addition is commutative, so the result
// does not depend on worker scheduling.
func (c *Column) Sum() (int64, error) {
	workers := c.workers()
	if workers > len(c.Blocks) {
		workers = len(c.Blocks)
	}
	if workers <= 1 {
		var total int64
		for i := range c.Blocks {
			if i+1 < len(c.Blocks) {
				c.Prefetch(nil, i+1)
			}
			f, err := c.form(i)
			if err != nil {
				return 0, err
			}
			s, err := query.Sum(f)
			if err != nil {
				return 0, err
			}
			total += s
		}
		return total, nil
	}
	var total int64
	err := ParallelFor(workers, len(c.Blocks), func(i int) error {
		if i+1 < len(c.Blocks) {
			c.Prefetch(nil, i+1)
		}
		f, err := c.form(i)
		if err != nil {
			return err
		}
		s, err := query.Sum(f)
		if err != nil {
			return err
		}
		atomic.AddInt64(&total, s)
		return nil
	})
	if err != nil {
		return 0, err
	}
	return total, nil
}

// Min returns the exact column minimum. Blocks with recorded stats
// answer from the index; others delegate to the form.
func (c *Column) Min() (int64, error) {
	if c.N == 0 {
		return 0, fmt.Errorf("query: Min of empty column")
	}
	have := false
	var m int64
	for i := range c.Blocks {
		b := &c.Blocks[i]
		if b.Count == 0 {
			continue
		}
		v := b.Min
		if !b.HasStats {
			f, err := c.form(i)
			if err != nil {
				return 0, err
			}
			v, err = query.Min(f)
			if err != nil {
				return 0, err
			}
		}
		if !have || v < m {
			m, have = v, true
		}
	}
	if !have {
		return 0, fmt.Errorf("query: Min of empty column")
	}
	return m, nil
}

// Max returns the exact column maximum, symmetric with Min.
func (c *Column) Max() (int64, error) {
	if c.N == 0 {
		return 0, fmt.Errorf("query: Max of empty column")
	}
	have := false
	var m int64
	for i := range c.Blocks {
		b := &c.Blocks[i]
		if b.Count == 0 {
			continue
		}
		v := b.Max
		if !b.HasStats {
			f, err := c.form(i)
			if err != nil {
				return 0, err
			}
			v, err = query.Max(f)
			if err != nil {
				return 0, err
			}
		}
		if !have || v > m {
			m, have = v, true
		}
	}
	if !have {
		return 0, fmt.Errorf("query: Max of empty column")
	}
	return m, nil
}

// RangeClass is the stat-pruning trichotomy for a range predicate
// against a block's [min, max]: refuted, proved, or undecided. The
// table-scan planner consumes it to skip block fetches per conjunct.
type RangeClass uint8

const (
	// RangeMiss: the stats refute the predicate — no row can match.
	RangeMiss RangeClass = iota
	// RangeAll: the stats prove the predicate — every row matches.
	RangeAll
	// RangePart: the stats cannot decide; the payload must be
	// consulted. Blocks without recorded stats always classify here.
	RangePart
)

// ClassifyRange places the value range [lo, hi] against the block's
// stats. An empty range (lo > hi) is always a miss.
func (b *Block) ClassifyRange(lo, hi int64) RangeClass {
	if lo > hi {
		return RangeMiss
	}
	if !b.HasStats {
		return RangePart
	}
	if b.Max < lo || b.Min > hi {
		return RangeMiss
	}
	if b.Min >= lo && b.Max <= hi {
		return RangeAll
	}
	return RangePart
}

func (b *Block) classify(lo, hi int64) RangeClass {
	return b.ClassifyRange(lo, hi)
}

// scanState is the pooled per-query state of the parallel scan paths:
// block classifications, the indices of straddling blocks, and the
// per-block selections parallel workers fill.
type scanState struct {
	classes []RangeClass
	parts   []int
	counts  []int64
	sels    []*sel.Selection
}

var scanPool = sync.Pool{New: func() any { return new(scanState) }}

// getScanState returns a pooled scanState sized for nblocks, with
// parts emptied and sels cleared.
func getScanState(nblocks int) *scanState {
	st := scanPool.Get().(*scanState)
	if cap(st.classes) < nblocks {
		st.classes = make([]RangeClass, nblocks)
	} else {
		st.classes = st.classes[:nblocks]
	}
	st.parts = st.parts[:0]
	if cap(st.counts) < nblocks {
		st.counts = make([]int64, nblocks)
	} else {
		st.counts = st.counts[:nblocks]
	}
	if cap(st.sels) < nblocks {
		st.sels = make([]*sel.Selection, nblocks)
	} else {
		st.sels = st.sels[:nblocks]
		for i := range st.sels {
			st.sels[i] = nil
		}
	}
	return st
}

func (st *scanState) release() { scanPool.Put(st) }

// classifyBlocks fills st.classes and collects straddling-block
// indices into st.parts.
func (c *Column) classifyBlocks(st *scanState, lo, hi int64) {
	for i := range c.Blocks {
		st.classes[i] = c.Blocks[i].classify(lo, hi)
		if st.classes[i] == RangePart {
			st.parts = append(st.parts, i)
		}
	}
}

// ParallelFor fans fn out over indices [0, n) from the given number
// of goroutines, drawing work from an atomic counter, and returns the
// first error (workers drain remaining indices after an error —
// blocks are independent and bounded, so cancellation plumbing is not
// worth its cost). Callers keep their workers<=1 loops inline:
// constructing the fn closure allocates, which the serial zero-alloc
// scan paths must avoid.
func ParallelFor(workers, n int, fn func(i int) error) error {
	var (
		wg    sync.WaitGroup
		next  int64 = -1
		errMu sync.Mutex
		first error
	)
	// call shields the worker goroutines from panics in fn: a panic in
	// one block's kernel must surface as that block's error, not kill
	// the whole process (a server runs these workers on behalf of HTTP
	// requests). The one closure per ParallelFor call is amortized over
	// all n indices.
	call := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				recoveredPanics.Add(1)
				err = fmt.Errorf("blocked: panic in parallel worker on index %d: %v", i, r)
			}
		}()
		return fn(i)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if err := call(i); err != nil {
					errMu.Lock()
					if first == nil {
						first = err
					}
					errMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return first
}

// forEachPart runs fn over st.parts from min(workers, len(parts))
// goroutines (inline when one suffices) and returns the first error.
// Before each block is processed the next undecided block is
// announced to the column's prefetcher, so its payload read overlaps
// the current block's decode; in the parallel shape adjacent workers
// may announce the same block, which the storage layer's coalescing
// makes a cheap cache probe.
func (c *Column) forEachPart(st *scanState, fn func(blockIdx int) error) error {
	workers := c.workers()
	if workers > len(st.parts) {
		workers = len(st.parts)
	}
	if workers <= 1 {
		for k, i := range st.parts {
			if k+1 < len(st.parts) {
				c.Prefetch(nil, st.parts[k+1])
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	return ParallelFor(workers, len(st.parts), func(i int) error {
		if i+1 < len(st.parts) {
			c.Prefetch(nil, st.parts[i+1])
		}
		return fn(st.parts[i])
	})
}

// CountRange counts elements in [lo, hi]. Blocks entirely outside
// the range contribute 0 and blocks entirely inside contribute their
// size, both in O(1) from the index; only straddling blocks consult
// their form, concurrently (bounded by the column's parallelism) and
// through the fused count kernels where the form allows.
func (c *Column) CountRange(lo, hi int64) (int64, error) {
	if lo > hi {
		return 0, nil
	}
	st := getScanState(len(c.Blocks))
	defer st.release()
	var total int64
	for i := range c.Blocks {
		b := &c.Blocks[i]
		switch b.classify(lo, hi) {
		case RangeMiss:
		case RangeAll:
			total += int64(b.Count)
		case RangePart:
			st.parts = append(st.parts, i)
		}
	}
	if len(st.parts) > 0 {
		// Per-block counts land in pooled state slots rather than a
		// shared accumulator, keeping the closure capture-by-value (a
		// by-reference total would escape to the heap on every call,
		// including pure-miss queries).
		err := c.forEachPart(st, func(i int) error {
			f, err := c.form(i)
			if err != nil {
				return err
			}
			n, err := query.CountRange(f, lo, hi)
			if err != nil {
				return err
			}
			st.counts[i] = n
			return nil
		})
		if err != nil {
			return 0, err
		}
		for _, i := range st.parts {
			total += st.counts[i]
		}
	}
	return total, nil
}

// SelectRange returns the row positions of elements in [lo, hi], in
// ascending order. A block whose [min, max] misses the range is
// never decoded; a block entirely inside emits its whole row span as
// a single run without decoding. The matches accumulate in a pooled
// bitmap selection (see SelectRangeSel); this method converts to the
// explicit row-position column at the boundary.
func (c *Column) SelectRange(lo, hi int64) ([]int64, error) {
	bm, err := c.SelectRangeSel(lo, hi)
	if err != nil {
		return nil, err
	}
	rows := bm.AppendRows(make([]int64, 0, bm.Count()), 0)
	bm.Release()
	return rows, nil
}

// SelectRangeSel evaluates the range predicate into a bitmap
// selection vector over [0, c.N): straddling blocks are scanned
// concurrently (bounded by the column's parallelism, each into its
// own pooled per-block selection) and merged in block order, so the
// result is deterministic. The selection comes from the shared pool —
// callers should Release it when done to keep steady-state scans
// allocation-free.
func (c *Column) SelectRangeSel(lo, hi int64) (*sel.Selection, error) {
	dst := sel.Get(c.N)
	if lo > hi {
		return dst, nil
	}
	st := getScanState(len(c.Blocks))
	defer st.release()
	c.classifyBlocks(st, lo, hi)

	workers := c.workers()
	if workers > 1 && len(st.parts) > 1 {
		// Parallel: each straddling block scans into a local
		// selection; the merge below ORs them in block order.
		err := c.forEachPart(st, func(i int) error {
			b := &c.Blocks[i]
			f, err := c.form(i)
			if err != nil {
				return err
			}
			local := sel.Get(b.Count)
			if err := query.SelectRangeSel(f, lo, hi, local, 0); err != nil {
				local.Release()
				return err
			}
			st.sels[i] = local
			return nil
		})
		if err != nil {
			for _, i := range st.parts {
				if st.sels[i] != nil {
					st.sels[i].Release()
				}
			}
			dst.Release()
			return nil, err
		}
		for i := range c.Blocks {
			b := &c.Blocks[i]
			switch st.classes[i] {
			case RangeAll:
				dst.AddRun(int(b.Start), b.Count)
			case RangePart:
				dst.OrAt(st.sels[i], int(b.Start))
				st.sels[i].Release()
				st.sels[i] = nil
			}
		}
		return dst, nil
	}

	// Serial: emit every block directly at its row offset, announcing
	// the following undecided block before each fetch.
	next := 0
	for i := range c.Blocks {
		b := &c.Blocks[i]
		switch st.classes[i] {
		case RangeAll:
			dst.AddRun(int(b.Start), b.Count)
		case RangePart:
			if next < len(st.parts) && st.parts[next] == i {
				next++
			}
			if next < len(st.parts) {
				c.Prefetch(nil, st.parts[next])
			}
			f, err := c.form(i)
			if err != nil {
				dst.Release()
				return nil, err
			}
			if err := query.SelectRangeSel(f, lo, hi, dst, int(b.Start)); err != nil {
				dst.Release()
				return nil, err
			}
		}
	}
	return dst, nil
}

// SelectBlockRangeSel evaluates the predicate lo ≤ v ≤ hi on block i
// alone, ORing the block's matches into dst at bit offset base (row r
// of the block sets bit base+r). Stats prune first: a refuted block
// touches nothing and a proved block emits its whole span as one run,
// neither fetching the payload — only RangePart blocks decode,
// through the fused kernels where the form allows. It is the leaf
// evaluation hook of the table-scan planner, which drives one call
// per undecided block per predicate leaf and intersects the results.
func (c *Column) SelectBlockRangeSel(i int, lo, hi int64, dst *sel.Selection, base int) error {
	if i < 0 || i >= len(c.Blocks) {
		return fmt.Errorf("blocked: block %d out of range [0, %d)", i, len(c.Blocks))
	}
	b := &c.Blocks[i]
	if b.Count == 0 {
		return nil
	}
	switch b.ClassifyRange(lo, hi) {
	case RangeMiss:
		return nil
	case RangeAll:
		dst.AddRun(base, b.Count)
		return nil
	}
	f, err := c.form(i)
	if err != nil {
		return err
	}
	return query.SelectRangeSel(f, lo, hi, dst, base)
}

// DecompressBlock decodes block i alone into dst, whose length must
// equal the block's count. The table scan's late-materialization
// paths use it to decode only the blocks holding surviving rows;
// temporaries come from the pooled scratch arena, so a reused dst
// keeps the steady state allocation-free.
func (c *Column) DecompressBlock(i int, dst []int64) error {
	if i < 0 || i >= len(c.Blocks) {
		return fmt.Errorf("blocked: block %d out of range [0, %d)", i, len(c.Blocks))
	}
	b := &c.Blocks[i]
	if len(dst) != b.Count {
		return fmt.Errorf("%w: DecompressBlock dst length %d, block %d holds %d",
			core.ErrCorruptForm, len(dst), i, b.Count)
	}
	f, err := c.form(i)
	if err != nil {
		return err
	}
	s := core.GetScratch()
	defer s.Release()
	if err := core.DecompressInto(f, dst, s); err != nil {
		return fmt.Errorf("blocked: block %d: %w", i, err)
	}
	return nil
}

// SumBlock returns the exact sum of block i, computed on the
// compressed form (runs and models sum without materializing). The
// table scan uses it for blocks whose every row survives the
// predicate, where decoding would be pure waste.
func (c *Column) SumBlock(i int) (int64, error) {
	if i < 0 || i >= len(c.Blocks) {
		return 0, fmt.Errorf("blocked: block %d out of range [0, %d)", i, len(c.Blocks))
	}
	f, err := c.form(i)
	if err != nil {
		return 0, err
	}
	return query.Sum(f)
}

// BoundariesEqual reports whether c and o partition their rows
// identically: same length, same block count, and the same
// (start, count) for every block. Identical boundaries are what lets
// the table-scan planner intersect per-column block verdicts
// block-by-block; columns encoded from equal-length inputs with the
// same block size always align.
func (c *Column) BoundariesEqual(o *Column) bool {
	if c.N != o.N || len(c.Blocks) != len(o.Blocks) {
		return false
	}
	for i := range c.Blocks {
		if c.Blocks[i].Start != o.Blocks[i].Start || c.Blocks[i].Count != o.Blocks[i].Count {
			return false
		}
	}
	return true
}

// CacheStats reports the block-cache traffic a cached block source
// has served — lookups by outcome, evictions, and resident bytes
// against budget.
type CacheStats struct {
	// Hits and Misses count cache lookups by outcome.
	Hits, Misses int64
	// Evictions counts entries dropped to make room.
	Evictions int64
	// BytesUsed is the current resident payload total.
	BytesUsed int64
	// BytesBudget is the configured capacity.
	BytesBudget int64
}

// ScanCounters is the cumulative block-level outcome tally of a
// table's scans: how many blocks the stats refuted (skipped without a
// fetch), proved (emitted as whole runs without a fetch), and left
// undecided (payload consulted). Like CacheStats, the canonical type
// lives here so both the table planner and a server's metrics
// endpoint can speak it without import cycles.
type ScanCounters struct {
	// Skipped counts blocks refuted by stats — never fetched.
	Skipped int64
	// Proved counts blocks proved by stats — emitted whole, never
	// fetched.
	Proved int64
	// Fetched counts undecided blocks whose payloads were consulted.
	Fetched int64
}

// CacheStatsSource is implemented by block sources backed by a shared
// payload cache (the lazily opened container's per-column readers).
type CacheStatsSource interface {
	// CacheStats snapshots the source's cache counters.
	CacheStats() CacheStats
}

// CacheStats snapshots the block-cache counters behind a lazily
// opened column — the same shared cache the owning container reports,
// reachable here without holding the container handle. ok is false
// for in-memory columns and sources without a cache.
func (c *Column) CacheStats() (stats CacheStats, ok bool) {
	if s, isCached := c.Source.(CacheStatsSource); isCached {
		return s.CacheStats(), true
	}
	return CacheStats{}, false
}

// SkipStats reports how block skipping would treat a range query:
// blocks skipped outright, emitted whole, and consulted. Benchmarks
// and Describe use it to make pruning observable.
func (c *Column) SkipStats(lo, hi int64) (skipped, whole, consulted int) {
	for i := range c.Blocks {
		switch c.Blocks[i].classify(lo, hi) {
		case RangeMiss:
			skipped++
		case RangeAll:
			whole++
		case RangePart:
			consulted++
		}
	}
	return
}

// PointLookup returns one element by row position: a binary search
// over the block index, then the block form's random-access path.
func (c *Column) PointLookup(row int64) (int64, error) {
	if row < 0 || row >= int64(c.N) {
		return 0, fmt.Errorf("query: row %d out of range [0, %d)", row, c.N)
	}
	// First block whose Start is > row, minus one.
	i := sort.Search(len(c.Blocks), func(i int) bool { return c.Blocks[i].Start > row }) - 1
	if i < 0 || row >= c.Blocks[i].Start+int64(c.Blocks[i].Count) {
		return 0, fmt.Errorf("%w: block index does not cover row %d", core.ErrCorruptForm, row)
	}
	f, err := c.form(i)
	if err != nil {
		return 0, err
	}
	return query.PointLookup(f, row-c.Blocks[i].Start)
}

// ApproxSum brackets the column sum by aggregating per-block model
// bounds (interval arithmetic distributes over the block partition).
func (c *Column) ApproxSum() (query.Interval, error) {
	var total query.Interval
	for i := range c.Blocks {
		f, err := c.form(i)
		if err != nil {
			return query.Interval{}, err
		}
		iv, err := query.ApproxSum(f)
		if err != nil {
			return query.Interval{}, err
		}
		total.Lower += iv.Lower
		total.Upper += iv.Upper
	}
	return total, nil
}

// EncodedBits sums the analytic payload size of every block form.
// On a lazily opened column this decodes every block; blocks whose
// payload cannot be read contribute zero.
func (c *Column) EncodedBits() uint64 {
	var total uint64
	for i := range c.Blocks {
		f, err := c.form(i)
		if err != nil {
			continue
		}
		total += f.PayloadBits()
	}
	return total
}

// BlockSchemes returns each block's scheme expression, in row order.
// On a lazily opened column this decodes every block; an unreadable
// block renders as an error note instead of a scheme.
func (c *Column) BlockSchemes() []string {
	out := make([]string, len(c.Blocks))
	for i := range c.Blocks {
		out[i] = c.describeBlock(i)
	}
	return out
}

// describeBlock renders block i's scheme expression, degrading to an
// error note when the block's payload cannot be fetched (Describe and
// BlockSchemes have no error to return).
func (c *Column) describeBlock(i int) string {
	f, err := c.form(i)
	if err != nil {
		return fmt.Sprintf("<unreadable: %v>", err)
	}
	return f.Describe()
}

// Describe renders the column's structure. A single-block column
// describes exactly like its form; a partitioned column lists the
// block size and each distinct scheme with the block ranges it won,
// making per-block re-composition directly observable.
func (c *Column) Describe() string {
	if len(c.Blocks) == 1 && c.BlockSize == 0 {
		return c.describeBlock(0)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "blocked(n=%d, block=%d, blocks=%d)", c.N, c.BlockSize, len(c.Blocks))
	for _, g := range c.schemeRuns() {
		if g.from == g.to {
			fmt.Fprintf(&b, "\n  [%d] %s", g.from, g.desc)
		} else {
			fmt.Fprintf(&b, "\n  [%d-%d] %s", g.from, g.to, g.desc)
		}
	}
	return b.String()
}

type schemeRun struct {
	from, to int
	desc     string
}

// schemeRuns groups consecutive blocks with identical scheme
// expressions.
func (c *Column) schemeRuns() []schemeRun {
	var runs []schemeRun
	for i := range c.Blocks {
		desc := c.describeBlock(i)
		if len(runs) > 0 && runs[len(runs)-1].desc == desc {
			runs[len(runs)-1].to = i
			continue
		}
		runs = append(runs, schemeRun{from: i, to: i, desc: desc})
	}
	return runs
}

// Validate checks the handle structurally: the block index must tile
// [0, N) exactly and every resident form must validate. On a lazily
// opened column, blocks whose forms are not resident are validated by
// index only — their payloads are checked (CRC, shape) at first touch
// by the source.
func (c *Column) Validate() error {
	var next int64
	for i := range c.Blocks {
		b := &c.Blocks[i]
		if b.Start != next {
			return fmt.Errorf("%w: block %d starts at %d, want %d", core.ErrCorruptForm, i, b.Start, next)
		}
		if b.Count < 0 {
			return fmt.Errorf("%w: block %d has negative count", core.ErrCorruptForm, i)
		}
		if b.Tombstone {
			// A tombstone is structurally valid without a form or
			// payload: its rows are declared lost, and every fetch
			// fails fast with ErrTombstone.
			if b.Form != nil {
				return fmt.Errorf("%w: block %d is tombstoned but carries a form", core.ErrCorruptForm, i)
			}
			next += int64(b.Count)
			continue
		}
		if b.Form == nil && c.Source == nil {
			return fmt.Errorf("%w: block %d has no form", core.ErrCorruptForm, i)
		}
		if b.Form != nil {
			if b.Form.N != b.Count {
				return fmt.Errorf("%w: block %d form length %d, index says %d",
					core.ErrCorruptForm, i, b.Form.N, b.Count)
			}
			if err := b.Form.Validate(); err != nil {
				return err
			}
		}
		if b.HasStats && b.Min > b.Max {
			return fmt.Errorf("%w: block %d stats min %d > max %d", core.ErrCorruptForm, i, b.Min, b.Max)
		}
		next += int64(b.Count)
	}
	if next != int64(c.N) {
		return fmt.Errorf("%w: blocks cover %d rows, column declares %d", core.ErrCorruptForm, next, c.N)
	}
	return nil
}
