package blocked

import (
	"errors"
	"fmt"
	"sync"

	"lwcomp/internal/core"
)

// Builder accumulates values for a blocked column incrementally —
// the ingest path. Full blocks are compressed as they fill
// (concurrently with further Appends), and Append blocks once all
// encode slots are busy, so a long-running loader holds at most one
// filling block plus Parallelism in-flight blocks of raw data.
type Builder struct {
	opt EncodeOptions

	mu      sync.Mutex
	buf     []int64
	start   int64 // row index of buf[0]
	blocks  map[int]Block
	nblocks int
	err     error

	wg  sync.WaitGroup
	sem chan struct{}

	flushed bool
}

// NewBuilder returns a Builder for the given options. A non-positive
// BlockSize falls back to DefaultBlockSize — a streaming builder has
// no "whole column" to defer to.
func NewBuilder(opt EncodeOptions) *Builder {
	if opt.BlockSize <= 0 {
		opt.BlockSize = DefaultBlockSize
	}
	return &Builder{
		opt:    opt,
		buf:    make([]int64, 0, opt.BlockSize),
		blocks: make(map[int]Block),
		sem:    make(chan struct{}, opt.workers()),
	}
}

// ErrBuilderDone is returned by Append after Flush.
var ErrBuilderDone = errors.New("blocked: builder already flushed")

// pending is a full block waiting for an encode slot.
type pending struct {
	data  []int64
	start int64
	idx   int
}

// Append adds values to the column under construction. Complete
// blocks are handed to background encoders; when every encode slot
// is busy, Append blocks (backpressure) instead of buffering raw
// data without bound.
func (b *Builder) Append(vals []int64) error {
	b.mu.Lock()
	if b.flushed {
		b.mu.Unlock()
		return ErrBuilderDone
	}
	if b.err != nil {
		err := b.err
		b.mu.Unlock()
		return err
	}
	var ready []pending
	for len(vals) > 0 {
		take := b.opt.BlockSize - len(b.buf)
		if take > len(vals) {
			take = len(vals)
		}
		b.buf = append(b.buf, vals[:take]...)
		vals = vals[take:]
		if len(b.buf) == b.opt.BlockSize {
			ready = append(ready, b.takeBlockLocked())
		}
	}
	b.mu.Unlock()
	b.launch(ready)
	return nil
}

// takeBlockLocked detaches the full buffer as a pending block.
// Callers hold b.mu.
func (b *Builder) takeBlockLocked() pending {
	p := pending{data: b.buf, start: b.start, idx: b.nblocks}
	b.nblocks++
	b.start += int64(len(b.buf))
	b.buf = make([]int64, 0, b.opt.BlockSize)
	return p
}

// launch encodes pending blocks in the background. The semaphore is
// acquired here, in the producer, so the caller blocks once all
// encode slots are taken — that is the memory bound.
func (b *Builder) launch(ready []pending) {
	for _, p := range ready {
		b.sem <- struct{}{}
		b.wg.Add(1)
		go func(p pending) {
			defer b.wg.Done()
			defer func() { <-b.sem }()
			s := core.GetScratch()
			defer s.Release()
			blk, err := encodeBlock(p.data, p.start, b.opt, s)
			b.mu.Lock()
			defer b.mu.Unlock()
			if err != nil {
				if b.err == nil {
					b.err = err
				}
				return
			}
			b.blocks[p.idx] = blk
		}(p)
	}
}

// Flush encodes the trailing partial block, waits for in-flight
// encodes, and returns the finished column. The builder cannot be
// reused afterwards.
func (b *Builder) Flush() (*Column, error) {
	b.mu.Lock()
	if b.flushed {
		b.mu.Unlock()
		return nil, ErrBuilderDone
	}
	b.flushed = true
	var ready []pending
	if len(b.buf) > 0 {
		ready = append(ready, b.takeBlockLocked())
	}
	n := int(b.start)
	nblocks := b.nblocks
	b.mu.Unlock()

	b.launch(ready)
	b.wg.Wait()

	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		return nil, b.err
	}
	col := &Column{
		N:           n,
		BlockSize:   b.opt.BlockSize,
		Parallelism: b.opt.Parallelism,
		Blocks:      make([]Block, nblocks),
	}
	if nblocks == 0 {
		// Nothing was ever appended: encode an empty single block so
		// the column behaves like Encode(nil).
		s := core.GetScratch()
		defer s.Release()
		blk, err := encodeBlock(nil, 0, b.opt, s)
		if err != nil {
			return nil, err
		}
		col.BlockSize = 0
		col.Blocks = []Block{blk}
		return col, nil
	}
	for i := 0; i < nblocks; i++ {
		blk, ok := b.blocks[i]
		if !ok {
			return nil, fmt.Errorf("blocked: builder lost block %d", i)
		}
		col.Blocks[i] = blk
	}
	return col, nil
}
