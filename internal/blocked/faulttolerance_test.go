package blocked

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"lwcomp/internal/core"
)

// lazify strips the resident forms off an encoded column and serves
// them through src instead — the shape of a lazily opened container.
func lazify(t *testing.T, vals []int64, blockSize int, src func(orig *Column) BlockSource) *Column {
	t.Helper()
	orig, err := Encode(vals, EncodeOptions{BlockSize: blockSize})
	if err != nil {
		t.Fatal(err)
	}
	lazy := &Column{N: orig.N, BlockSize: orig.BlockSize, Blocks: append([]Block(nil), orig.Blocks...)}
	for i := range lazy.Blocks {
		lazy.Blocks[i].Form = nil
	}
	lazy.Source = src(orig)
	return lazy
}

// pickySource serves forms from a resident column but fails chosen
// blocks, counting fetches per block.
type pickySource struct {
	orig    *Column
	fail    map[int]error
	fetches map[int]int
}

func (s *pickySource) BlockForm(i int) (*core.Form, error) {
	s.fetches[i]++
	if err, ok := s.fail[i]; ok {
		return nil, err
	}
	return s.orig.Blocks[i].Form, nil
}

func TestFaultQuarantinePermanentError(t *testing.T) {
	permErr := fmt.Errorf("decode: %w", core.ErrCorruptForm)
	var src *pickySource
	col := lazify(t, make([]int64, 256), 64, func(orig *Column) BlockSource {
		src = &pickySource{orig: orig, fail: map[int]error{2: permErr}, fetches: map[int]int{}}
		return src
	})

	// First touch: the source's error surfaces and the block is pinned.
	if _, err := col.BlockForm(2); !errors.Is(err, core.ErrCorruptForm) {
		t.Fatalf("first fetch: %v", err)
	}
	if n := col.QuarantineCount(); n != 1 {
		t.Fatalf("QuarantineCount = %d", n)
	}
	if got := col.QuarantinedBlocks(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("QuarantinedBlocks = %v", got)
	}
	// Second touch fails fast with ErrQuarantined — no re-read of bytes
	// known to be bad.
	if _, err := col.BlockForm(2); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("second fetch: %v, want ErrQuarantined", err)
	}
	if src.fetches[2] != 1 {
		t.Fatalf("block 2 fetched %d times after quarantine", src.fetches[2])
	}
	// Healthy blocks are untouched by the neighbor's quarantine.
	if _, err := col.BlockForm(1); err != nil {
		t.Fatalf("healthy block: %v", err)
	}
	if qerr, ok := col.QuarantineError(2); !ok || !errors.Is(qerr, core.ErrCorruptForm) {
		t.Fatalf("QuarantineError = %v, %v", qerr, ok)
	}
}

func TestFaultTransientErrorNotQuarantined(t *testing.T) {
	transient := errors.New("transient I/O error")
	var src *pickySource
	col := lazify(t, make([]int64, 128), 64, func(orig *Column) BlockSource {
		src = &pickySource{orig: orig, fail: map[int]error{0: transient}, fetches: map[int]int{}}
		return src
	})
	if _, err := col.BlockForm(0); !errors.Is(err, transient) {
		t.Fatalf("first fetch: %v", err)
	}
	if n := col.QuarantineCount(); n != 0 {
		t.Fatalf("transient error quarantined the block (count %d)", n)
	}
	// Once the fault clears, the block serves again.
	delete(src.fail, 0)
	if _, err := col.BlockForm(0); err != nil {
		t.Fatalf("fetch after fault cleared: %v", err)
	}
}

func TestIsPermanentClassification(t *testing.T) {
	cases := []struct {
		err  error
		perm bool
	}{
		{fmt.Errorf("wrap: %w", core.ErrCorruptForm), true},
		{fmt.Errorf("wrap: %w", core.ErrUnknownScheme), true},
		{fmt.Errorf("wrap: %w", ErrQuarantined), true},
		{errors.New("connection reset"), false},
		{nil, false},
	}
	for _, c := range cases {
		if got := IsPermanent(c.err); got != c.perm {
			t.Errorf("IsPermanent(%v) = %v, want %v", c.err, got, c.perm)
		}
	}
}

func TestFaultParallelForRecoversPanic(t *testing.T) {
	before := RecoveredPanics()
	err := ParallelFor(4, 32, func(i int) error {
		if i == 17 {
			panic("worker crash")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic did not surface as an error")
	}
	if !strings.Contains(err.Error(), "panic in parallel worker on index 17") {
		t.Fatalf("error %q does not name the panicking index", err)
	}
	if RecoveredPanics() <= before {
		t.Fatal("RecoveredPanics did not increment")
	}
	// The pool is healthy afterwards: a clean run still works.
	if err := ParallelFor(4, 32, func(i int) error { return nil }); err != nil {
		t.Fatalf("ParallelFor after recovered panic: %v", err)
	}
}
