package blocked

import (
	"errors"
	"sort"
	"sync/atomic"

	"lwcomp/internal/core"
)

// This file is the column-level half of the fault-tolerance layer:
// classifying errors as transient vs permanent, quarantining blocks
// whose payloads are permanently bad, and surfacing retry and panic
// counters. The storage layer below retries transient I/O; this layer
// remembers permanent failures so a bad block is fetched once, fails
// fast forever after, and can be skipped exactly by a degraded scan.

// ErrQuarantined marks errors returned for blocks that previously
// failed with a permanent error (bad CRC, undecodable form) and were
// quarantined on the column. Use errors.Is to test for it. The
// original condemning error stays in the chain.
var ErrQuarantined = errors.New("blocked: block quarantined")

// permanentError is the marker interface storage's integrity
// sentinels implement. Detecting it via errors.As keeps this package
// free of a storage import (storage imports blocked, not vice versa).
type permanentError interface {
	// PermanentStorageError reports whether the error is a
	// data-integrity failure retrying cannot fix.
	PermanentStorageError() bool
}

// IsPermanent reports whether err is a data-integrity failure that
// retrying cannot fix: checksum mismatches, corrupt containers or
// forms, unknown schemes, and quarantined blocks. Everything else —
// in particular wrapped I/O errors from the byte source — is treated
// as transient and eligible for retry.
func IsPermanent(err error) bool {
	var p permanentError
	if errors.As(err, &p) {
		return p.PermanentStorageError()
	}
	return errors.Is(err, core.ErrCorruptForm) ||
		errors.Is(err, core.ErrUnknownScheme) ||
		errors.Is(err, ErrQuarantined)
}

// quarantine records a permanent failure of block i. First writer
// wins; later failures of the same block keep the original cause.
func (c *Column) quarantine(i int, err error) {
	c.quarMu.Lock()
	if c.quar == nil {
		c.quar = make(map[int]error)
	}
	if _, dup := c.quar[i]; !dup {
		c.quar[i] = err
	}
	c.quarMu.Unlock()
}

// QuarantineError returns the permanent error that condemned block i,
// if the block is quarantined.
func (c *Column) QuarantineError(i int) (err error, ok bool) {
	c.quarMu.Lock()
	err, ok = c.quar[i]
	c.quarMu.Unlock()
	return err, ok
}

// QuarantineCount returns the number of quarantined blocks.
func (c *Column) QuarantineCount() int {
	c.quarMu.Lock()
	n := len(c.quar)
	c.quarMu.Unlock()
	return n
}

// QuarantinedBlocks returns the quarantined block indices in
// ascending order (nil when the column is healthy).
func (c *Column) QuarantinedBlocks() []int {
	c.quarMu.Lock()
	var out []int
	for i := range c.quar {
		out = append(out, i)
	}
	c.quarMu.Unlock()
	sort.Ints(out)
	return out
}

// ReadStats is the cumulative retry tally of a column's byte source:
// transient read failures absorbed by backoff, and reads abandoned
// after the retry budget ran out. Like CacheStats, the canonical type
// lives here so the storage layer and a server's metrics endpoint can
// speak it without import cycles.
type ReadStats struct {
	// Retries counts re-issued reads after a transient failure.
	Retries int64
	// Giveups counts reads that still failed after the last retry.
	Giveups int64
}

// ReadStatsSource is implemented by block sources whose reads retry
// transient failures (the lazily opened container's column readers).
type ReadStatsSource interface {
	// ReadStats snapshots the source's retry counters.
	ReadStats() ReadStats
}

// ReadStats snapshots the retry counters behind a lazily opened
// column. ok is false for in-memory columns and sources without retry
// accounting.
func (c *Column) ReadStats() (stats ReadStats, ok bool) {
	if s, has := c.Source.(ReadStatsSource); has {
		return s.ReadStats(), true
	}
	return ReadStats{}, false
}

// recoveredPanics counts panics converted to errors by ParallelFor
// workers, process-wide.
var recoveredPanics atomic.Int64

// RecoveredPanics returns the process-wide count of panics ParallelFor
// workers have recovered and converted into block errors. A server
// folds it into its panics_recovered metric.
func RecoveredPanics() int64 { return recoveredPanics.Load() }
