package blocked

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"lwcomp/internal/core"
)

// This file is the column-level half of the fault-tolerance layer:
// classifying errors as transient vs permanent, quarantining blocks
// whose payloads are permanently bad, and surfacing retry and panic
// counters. The storage layer below retries transient I/O; this layer
// remembers permanent failures so a bad block is fetched once, fails
// fast forever after, and can be skipped exactly by a degraded scan.

// ErrQuarantined marks errors returned for blocks that previously
// failed with a permanent error (bad CRC, undecodable form) and were
// quarantined on the column. Use errors.Is to test for it. The
// original condemning error stays in the chain.
var ErrQuarantined = errors.New("blocked: block quarantined")

// ErrTombstone marks errors returned for blocks whose payload was
// lost for good and tombstoned by salvage repair: the container's
// index still declares the block's row range, but there are no bytes
// behind it. Tombstones are permanent by construction — a degraded
// scan skips exactly the tombstoned range, a default scan fails fast.
// Use errors.Is to test for it.
var ErrTombstone = errors.New("blocked: block tombstoned (payload lost)")

// permanentError is the marker interface storage's integrity
// sentinels implement. Detecting it via errors.As keeps this package
// free of a storage import (storage imports blocked, not vice versa).
type permanentError interface {
	// PermanentStorageError reports whether the error is a
	// data-integrity failure retrying cannot fix.
	PermanentStorageError() bool
}

// IsPermanent reports whether err is a data-integrity failure that
// retrying cannot fix: checksum mismatches, corrupt containers or
// forms, unknown schemes, and quarantined blocks. Everything else —
// in particular wrapped I/O errors from the byte source — is treated
// as transient and eligible for retry.
func IsPermanent(err error) bool {
	var p permanentError
	if errors.As(err, &p) {
		return p.PermanentStorageError()
	}
	return errors.Is(err, core.ErrCorruptForm) ||
		errors.Is(err, core.ErrUnknownScheme) ||
		errors.Is(err, ErrQuarantined) ||
		errors.Is(err, ErrTombstone)
}

// quarantine records a permanent failure of block i. First writer
// wins; later failures of the same block keep the original cause.
func (c *Column) quarantine(i int, err error) {
	c.quarMu.Lock()
	if c.quar == nil {
		c.quar = make(map[int]error)
	}
	if _, dup := c.quar[i]; !dup {
		c.quar[i] = err
	}
	c.quarMu.Unlock()
}

// Quarantine records an externally diagnosed permanent failure of
// block i — the hook a background scrubber uses to condemn a block it
// found rotten before any query touched it. Out-of-range indices and
// non-permanent errors are ignored (transient failures are the retry
// layer's business, not the ledger's). It reports whether the block
// was newly quarantined; a block already in the ledger keeps its
// original cause.
func (c *Column) Quarantine(i int, err error) bool {
	if i < 0 || i >= len(c.Blocks) || err == nil || !IsPermanent(err) {
		return false
	}
	c.quarMu.Lock()
	defer c.quarMu.Unlock()
	if c.quar == nil {
		c.quar = make(map[int]error)
	}
	if _, dup := c.quar[i]; dup {
		return false
	}
	c.quar[i] = err
	return true
}

// MarkTombstone declares block i's payload lost for good: the block
// is flagged as a tombstone and quarantined with an ErrTombstone
// cause carrying the reason, so every fetch fails fast and degraded
// scans skip exactly its row range. Container open uses it to
// materialize persisted tombstones; salvage repair uses it when a
// block cannot be recovered.
func (c *Column) MarkTombstone(i int, reason string) {
	if i < 0 || i >= len(c.Blocks) {
		return
	}
	b := &c.Blocks[i]
	b.Form = nil
	b.Tombstone = true
	b.TombstoneReason = reason
	// Stats must go with the payload: a planner proving the block
	// entirely from [min, max] would count rows that no longer exist.
	// Statless blocks are always fetched — and the fetch fails fast.
	b.HasStats = false
	b.Min, b.Max = 0, 0
	err := ErrTombstone
	if reason != "" {
		err = fmt.Errorf("%w: %s", ErrTombstone, reason)
	}
	c.quarMu.Lock()
	if c.quar == nil {
		c.quar = make(map[int]error)
	}
	c.quar[i] = err
	c.quarMu.Unlock()
}

// ClearQuarantine empties the column's quarantine ledger — the hook a
// successful heal uses to re-admit blocks whose bytes were repaired
// in place. Tombstoned blocks stay condemned: their payloads do not
// exist, so re-admitting them could only fail again. It returns the
// number of entries cleared.
func (c *Column) ClearQuarantine() int {
	c.quarMu.Lock()
	defer c.quarMu.Unlock()
	cleared := 0
	for i := range c.quar {
		if i >= 0 && i < len(c.Blocks) && c.Blocks[i].Tombstone {
			continue
		}
		delete(c.quar, i)
		cleared++
	}
	return cleared
}

// QuarantineError returns the permanent error that condemned block i,
// if the block is quarantined.
func (c *Column) QuarantineError(i int) (err error, ok bool) {
	c.quarMu.Lock()
	err, ok = c.quar[i]
	c.quarMu.Unlock()
	return err, ok
}

// QuarantineCount returns the number of quarantined blocks.
func (c *Column) QuarantineCount() int {
	c.quarMu.Lock()
	n := len(c.quar)
	c.quarMu.Unlock()
	return n
}

// QuarantinedBlocks returns the quarantined block indices in
// ascending order (nil when the column is healthy).
func (c *Column) QuarantinedBlocks() []int {
	c.quarMu.Lock()
	var out []int
	for i := range c.quar {
		out = append(out, i)
	}
	c.quarMu.Unlock()
	sort.Ints(out)
	return out
}

// ReadStats is the cumulative retry tally of a column's byte source:
// transient read failures absorbed by backoff, and reads abandoned
// after the retry budget ran out. Like CacheStats, the canonical type
// lives here so the storage layer and a server's metrics endpoint can
// speak it without import cycles.
type ReadStats struct {
	// Retries counts re-issued reads after a transient failure.
	Retries int64
	// Giveups counts reads that still failed after the last retry.
	Giveups int64
}

// ReadStatsSource is implemented by block sources whose reads retry
// transient failures (the lazily opened container's column readers).
type ReadStatsSource interface {
	// ReadStats snapshots the source's retry counters.
	ReadStats() ReadStats
}

// ReadStats snapshots the retry counters behind a lazily opened
// column. ok is false for in-memory columns and sources without retry
// accounting.
func (c *Column) ReadStats() (stats ReadStats, ok bool) {
	if s, has := c.Source.(ReadStatsSource); has {
		return s.ReadStats(), true
	}
	return ReadStats{}, false
}

// recoveredPanics counts panics converted to errors by ParallelFor
// workers, process-wide.
var recoveredPanics atomic.Int64

// RecoveredPanics returns the process-wide count of panics ParallelFor
// workers have recovered and converted into block errors. A server
// folds it into its panics_recovered metric.
func RecoveredPanics() int64 { return recoveredPanics.Load() }
