// Package blocked implements the block-partitioned column handle
// behind the public lwcomp.Column API.
//
// The paper argues that compression schemes decompose into
// constituents so the right composite can be re-composed per data
// region. This package applies that thesis at storage granularity:
// the input column is partitioned into fixed-size blocks, the
// composite-scheme analyzer runs independently on every block
// (concurrently, bounded by a worker count), and each block records
// the [min, max] of its raw values. Queries then aggregate across
// blocks and use the stats to skip blocks entirely — a SelectRange
// that misses a block's [min, max] never decodes it, and a
// PointLookup binary-searches the block index.
//
// Because every block is compressed independently, a block is also
// *decodable* independently — which is what makes columns
// file-backed: a Column whose Source is set may leave its Blocks'
// Forms nil, and every query path fetches just the forms it touches
// through the BlockSource at first use (the lazy path behind
// lwcomp.OpenFile). In-memory columns keep their forms resident and
// never consult a source, so the hot scan paths stay allocation-free.
package blocked
