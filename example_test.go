package lwcomp_test

import (
	"fmt"
	"log"
	"os"

	"lwcomp"
)

// ExampleEncode compresses a column under per-block scheme selection
// and queries it without decompressing.
func ExampleEncode() {
	src := make([]int64, 100000)
	for i := range src {
		src[i] = int64(i / 100) // long runs: the analyzer will pick an RLE composite
	}
	col, err := lwcomp.Encode(src, lwcomp.WithBlockSize(1<<14))
	if err != nil {
		log.Fatal(err)
	}
	sum, _ := col.Sum()
	fmt.Println(col.N, col.NumBlocks(), sum)
	// Output: 100000 7 49950000
}

// ExampleOpenFile writes a container, reopens it lazily, and queries
// it: only the header, the block index, and the touched blocks are
// read from disk.
func ExampleOpenFile() {
	src := make([]int64, 1<<16)
	for i := range src {
		src[i] = int64(i)
	}
	col, err := lwcomp.Encode(src, lwcomp.WithBlockSize(4096))
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.CreateTemp("", "lwcomp-example-*.lwc")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(f.Name())
	if err := lwcomp.WriteColumns(f, []lwcomp.NamedColumn{{Name: "rows", Col: col}}); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	opened, err := lwcomp.OpenFile(f.Name(), lwcomp.WithBlockCache(8<<20))
	if err != nil {
		log.Fatal(err)
	}
	defer opened.Close()
	v, err := opened.PointLookup(31000) // reads exactly one block
	if err != nil {
		log.Fatal(err)
	}
	n, err := opened.CountRange(100, 199) // [min,max] stats skip 15 of 16 blocks
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(v, n)
	// Output: 31000 100
}

// ExampleColumn_SelectRange evaluates a range predicate on the
// compressed column; blocks whose [min, max] stats miss the range are
// never decoded.
func ExampleColumn_SelectRange() {
	src := []int64{5, 12, 7, 30, 12, 3, 25, 12}
	col, err := lwcomp.Encode(src)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := col.SelectRange(10, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rows)
	// Output: [1 4 7]
}

// ExampleColumnBuilder streams values in batches; full blocks
// compress in the background while ingest continues.
func ExampleColumnBuilder() {
	b := lwcomp.NewColumnBuilder(lwcomp.WithBlockSize(1<<12), lwcomp.WithParallelism(2))
	for batch := 0; batch < 16; batch++ {
		vals := make([]int64, 1000)
		for i := range vals {
			vals[i] = int64(batch)
		}
		if err := b.Append(vals); err != nil {
			log.Fatal(err)
		}
	}
	col, err := b.Flush()
	if err != nil {
		log.Fatal(err)
	}
	sum, _ := col.Sum()
	fmt.Println(col.N, sum)
	// Output: 16000 120000
}
