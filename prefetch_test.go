package lwcomp_test

import (
	"context"
	"testing"
	"time"

	"lwcomp"
)

// TestPrefetchReadsOnlyAdmittedBlocks is the prefetcher's read-set
// guarantee: with the block cache (and therefore prefetching) enabled,
// a cold two-predicate scan still reads exactly the payloads the
// planner admits — the prefetch announces name only undecided blocks,
// and the storage singleflight coalesces a prefetch racing the demand
// fetch of the same block into one read. A second scan over the warm
// cache reads nothing at all.
func TestPrefetchReadsOnlyAdmittedBlocks(t *testing.T) {
	const n, bs = 1 << 16, 4096
	date, status, _, data := buildTableFixture(t, n, bs)
	extents, payloadStart := allExtents(t, data)
	const dateCol, statusCol = 0, 1

	ra := &countingReaderAt{data: data}
	tbl, err := lwcomp.OpenTableReader(ra, int64(len(data)), lwcomp.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()

	lo, hi := date[6*bs+100], date[10*bs+99] // inside blocks 6 and 10
	expr := lwcomp.And(lwcomp.Range("date", lo, hi), lwcomp.Eq("status", 1))
	want := int64(0)
	for i := range date {
		if date[i] >= lo && date[i] <= hi && status[i] == 1 {
			want++
		}
	}

	ra.reset()
	got, err := tbl.CountWhere(context.Background(), expr)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("CountWhere = %d, want %d", got, want)
	}
	// Exactly the admitted set, each block read once: status on blocks
	// 8 and 9 (date proved there), both columns on block 10. Every
	// prefetch announce named a block in this set, and none duplicated
	// a demand fetch.
	expected := [][2]int64{
		extentRange(extents[statusCol][8], payloadStart),
		extentRange(extents[statusCol][9], payloadStart),
		extentRange(extents[dateCol][10], payloadStart),
		extentRange(extents[statusCol][10], payloadStart),
	}
	_, _, ranges := ra.snapshot()
	assertSameReads(t, "cold fused count", ranges, expected)

	// Warm: every admitted payload is cached; no reads at all.
	ra.reset()
	if got, err := tbl.CountWhere(context.Background(), expr); err != nil || got != want {
		t.Fatalf("warm CountWhere = %d, %v", got, err)
	}
	if calls, _, ranges := ra.snapshot(); calls != 0 {
		t.Fatalf("warm scan issued %d reads: %v", calls, ranges)
	}
}

// TestPrefetchExpiredContext: prefetches announced under an expired
// context never touch the reader — the worker checks the request's
// deadline before fetching — and closing the table drains the worker
// without leaking its goroutine (the race sweep would flag a read
// racing Close).
func TestPrefetchExpiredContext(t *testing.T) {
	const n, bs = 1 << 14, 2048
	_, _, _, data := buildTableFixture(t, n, bs)

	ra := &countingReaderAt{data: data}
	tbl, err := lwcomp.OpenTableReader(ra, int64(len(data)), lwcomp.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	col, err := tbl.Column("amount")
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before any announce
	ra.reset()
	for i := 0; i < col.NumBlocks(); i++ {
		col.Prefetch(ctx, i)
	}
	// The worker may still be draining the queue; give it a moment.
	// Whatever it has processed so far, expired requests fetch nothing,
	// so the only acceptable read count is zero.
	time.Sleep(50 * time.Millisecond)
	if calls, _, ranges := ra.snapshot(); calls != 0 {
		t.Fatalf("expired prefetches issued %d reads: %v", calls, ranges)
	}

	// Live prefetches do fetch — and Close waits for the worker, so no
	// read can race the reader's release.
	for i := 0; i < col.NumBlocks(); i++ {
		col.Prefetch(context.Background(), i)
	}
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}
	calls, _, _ := ra.snapshot()
	after := calls
	time.Sleep(20 * time.Millisecond)
	if calls, _, _ := ra.snapshot(); calls != after {
		t.Fatalf("reads continued after Close: %d -> %d", after, calls)
	}
}
