package lwcomp_test

// This file is the documentation gate CI runs: every exported symbol
// in the public package and in every internal package must carry a
// godoc comment. It fails listing the undocumented symbols, so the
// fix is always "write the missing comment", never "find the tool".

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// packageDirs returns the repository's Go package directories: the
// root and every directory under internal/ and cmd/ that holds Go
// files.
func packageDirs(t *testing.T) []string {
	t.Helper()
	dirs := []string{"."}
	for _, tree := range []string{"internal", "cmd"} {
		err := filepath.WalkDir(tree, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			entries, err := os.ReadDir(path)
			if err != nil {
				return err
			}
			for _, e := range entries {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
					dirs = append(dirs, path)
					break
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return dirs
}

// isGenerated reports the standard "Code generated ... DO NOT EDIT."
// marker, which exempts a file from the documentation gate.
func isGenerated(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.End() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if strings.Contains(c.Text, "DO NOT EDIT") {
				return true
			}
		}
	}
	return false
}

// TestGodocCoverage enforces the documentation contract: a package
// comment per package and a doc comment on every exported type,
// function, method, constant and variable.
func TestGodocCoverage(t *testing.T) {
	fset := token.NewFileSet()
	var missing []string
	for _, dir := range packageDirs(t) {
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, pkg := range pkgs {
			hasPkgDoc := false
			for _, f := range pkg.Files {
				if f.Doc != nil {
					hasPkgDoc = true
				}
			}
			if !hasPkgDoc {
				missing = append(missing, dir+": package "+pkg.Name+" has no package comment")
			}
			for path, f := range pkg.Files {
				if isGenerated(f) {
					continue
				}
				for _, decl := range f.Decls {
					missing = append(missing, undocumented(path, decl)...)
				}
			}
		}
	}
	if len(missing) > 0 {
		t.Errorf("%d undocumented exported symbols:\n  %s",
			len(missing), strings.Join(missing, "\n  "))
	}
}

// undocumented returns the exported, doc-less symbols of one
// top-level declaration.
func undocumented(path string, decl ast.Decl) []string {
	var out []string
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !receiverExported(d) {
			return nil
		}
		if d.Doc == nil {
			out = append(out, path+": "+funcLabel(d))
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
					out = append(out, path+": type "+s.Name.Name)
				}
				// Exported struct fields and interface methods ride
				// on the type's doc; they are not gated.
			case *ast.ValueSpec:
				// A doc comment on the const/var block covers the
				// whole group.
				if d.Doc != nil || s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, name := range s.Names {
					if name.IsExported() {
						out = append(out, path+": "+name.Name)
					}
				}
			}
		}
	}
	return out
}

// receiverExported reports whether a method's receiver type is
// exported (methods on unexported types are internal API).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr: // generic receiver
			t = v.X
		case *ast.IndexListExpr:
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}

// funcLabel renders "func Name" or "method (T) Name".
func funcLabel(d *ast.FuncDecl) string {
	if d.Recv == nil {
		return "func " + d.Name.Name
	}
	return "method " + d.Name.Name
}
