//go:build !race

package lwcomp_test

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
