package lwcomp_test

import (
	"bytes"
	"errors"
	"testing"

	"lwcomp"
	"lwcomp/internal/workload"
)

func equal(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPublicAPIEndToEnd exercises the documented quick-start flow.
func TestPublicAPIEndToEnd(t *testing.T) {
	dates := workload.OrderShipDates(20000, 50, 730120, 1)

	form, err := lwcomp.CompressBest(dates)
	if err != nil {
		t.Fatal(err)
	}
	back, err := lwcomp.Decompress(form)
	if err != nil || !equal(back, dates) {
		t.Fatalf("roundtrip: %v", err)
	}

	// Query without decompressing.
	var want int64
	for _, v := range dates {
		want += v
	}
	got, err := lwcomp.Sum(form)
	if err != nil || got != want {
		t.Fatalf("Sum = %d, want %d (%v)", got, want, err)
	}

	lo, hi := dates[100], dates[300]
	var wantCount int64
	for _, v := range dates {
		if v >= lo && v <= hi {
			wantCount++
		}
	}
	count, err := lwcomp.CountRange(form, lo, hi)
	if err != nil || count != wantCount {
		t.Fatalf("CountRange = %d, want %d (%v)", count, wantCount, err)
	}

	// Serialize and read back.
	var buf bytes.Buffer
	if err := lwcomp.WriteContainer(&buf, []lwcomp.StoredColumn{{Name: "ship_date", Form: form}}); err != nil {
		t.Fatal(err)
	}
	cols, err := lwcomp.ReadContainer(bytes.NewReader(buf.Bytes()))
	if err != nil || len(cols) != 1 {
		t.Fatalf("container: %v", err)
	}
	back, err = lwcomp.Decompress(cols[0].Form)
	if err != nil || !equal(back, dates) {
		t.Fatalf("container roundtrip: %v", err)
	}
}

func TestPublicComposition(t *testing.T) {
	dates := workload.OrderShipDates(5000, 30, 730120, 2)
	s := lwcomp.Compose(lwcomp.RLE(), map[string]lwcomp.Scheme{
		"lengths": lwcomp.NS(),
		"values": lwcomp.Compose(lwcomp.Delta(), map[string]lwcomp.Scheme{
			"deltas": lwcomp.NS(),
		}),
	})
	form, err := s.Compress(dates)
	if err != nil {
		t.Fatal(err)
	}
	if form.Describe() != "rle(lengths=ns, values=delta(deltas=ns))" {
		t.Fatalf("Describe = %q", form.Describe())
	}
	back, err := lwcomp.Decompress(form)
	if err != nil || !equal(back, dates) {
		t.Fatalf("roundtrip: %v", err)
	}
	// Same bytes as the packaged convenience composite.
	conv, err := lwcomp.RLEDeltaNS().Compress(dates)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := lwcomp.EncodeForm(form)
	b, _ := lwcomp.EncodeForm(conv)
	if !bytes.Equal(a, b) {
		t.Fatal("hand-built composition differs from convenience composite")
	}
}

func TestPublicRewrites(t *testing.T) {
	dates := workload.OrderShipDates(3000, 25, 730120, 3)
	rle, err := lwcomp.RLENS().Compress(dates)
	if err != nil {
		t.Fatal(err)
	}
	rpe, err := lwcomp.DecomposeRLE(rle)
	if err != nil {
		t.Fatal(err)
	}
	back, err := lwcomp.Decompress(rpe)
	if err != nil || !equal(back, dates) {
		t.Fatalf("decomposed roundtrip: %v", err)
	}
	again, err := lwcomp.RecomposeRLE(rpe)
	if err != nil {
		t.Fatal(err)
	}
	back, err = lwcomp.Decompress(again)
	if err != nil || !equal(back, dates) {
		t.Fatalf("recomposed roundtrip: %v", err)
	}

	walk := workload.RandomWalk(3000, 8, 1<<25, 4)
	forForm, err := lwcomp.FORNS(128).Compress(walk)
	if err != nil {
		t.Fatal(err)
	}
	plus, err := lwcomp.DecomposeFOR(forForm)
	if err != nil {
		t.Fatal(err)
	}
	back, err = lwcomp.Decompress(plus)
	if err != nil || !equal(back, walk) {
		t.Fatalf("FOR decomposition roundtrip: %v", err)
	}
}

func TestPublicPlanDecompression(t *testing.T) {
	dates := workload.OrderShipDates(2000, 20, 730120, 5)
	form, err := lwcomp.RLENS().Compress(dates)
	if err != nil {
		t.Fatal(err)
	}
	plan, env, err := lwcomp.PlanOf(form)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Inputs()) != 2 || len(env) != 2 {
		t.Fatalf("plan inputs = %v", plan.Inputs())
	}
	for _, fuse := range []bool{false, true} {
		got, err := lwcomp.DecompressViaPlan(form, fuse)
		if err != nil || !equal(got, dates) {
			t.Fatalf("plan decompression (fuse=%v): %v", fuse, err)
		}
	}
}

func TestPublicApproxAndGradual(t *testing.T) {
	walk := workload.RandomWalk(8192, 10, 1<<20, 6)
	var want int64
	for _, v := range walk {
		want += v
	}
	form, err := lwcomp.FORNS(256).Compress(walk)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := lwcomp.ApproxSum(form)
	if err != nil || !iv.Contains(want) {
		t.Fatalf("approx interval misses truth: %+v, %v", iv, err)
	}
	g, err := lwcomp.NewGradualSummer(form)
	if err != nil {
		t.Fatal(err)
	}
	for !g.Done() {
		if _, err := g.Refine(4); err != nil {
			t.Fatal(err)
		}
	}
	if final := g.Bounds(); final.Lower != want || final.Width() != 0 {
		t.Fatalf("gradual sum = %+v, want %d", final, want)
	}
}

func TestPublicErrorsAndRegistry(t *testing.T) {
	if _, err := lwcomp.Compress("no-such-scheme", []int64{1}); !errors.Is(err, lwcomp.ErrUnknownScheme) {
		t.Fatalf("unknown scheme err = %v", err)
	}
	names := lwcomp.Schemes()
	wantNames := map[string]bool{"id": false, "ns": false, "rle": false, "rpe": false,
		"for": false, "delta": false, "dict": false, "step": false, "linear": false,
		"plus": false, "patch": false, "vns": false, "varint": false, "elias": false, "const": false}
	for _, n := range names {
		if _, ok := wantNames[n]; ok {
			wantNames[n] = true
		}
	}
	for n, seen := range wantNames {
		if !seen {
			t.Errorf("scheme %q not registered", n)
		}
	}
	st := lwcomp.Analyze([]int64{1, 1, 2})
	if st.N != 3 || st.Runs != 2 {
		t.Fatalf("Analyze = %+v", st)
	}
}

func TestPublicTreePlan(t *testing.T) {
	dates := workload.OrderShipDates(4000, 32, 730120, 8)
	form, err := lwcomp.RLEDeltaNS().Compress(dates)
	if err != nil {
		t.Fatal(err)
	}
	plan, env, err := lwcomp.PlanTree(form)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Inputs()) != 2 || len(env) != 2 {
		t.Fatalf("tree plan inputs = %v", plan.Inputs())
	}
	for _, fuse := range []bool{false, true} {
		got, err := lwcomp.DecompressViaTreePlan(form, fuse)
		if err != nil || !equal(got, dates) {
			t.Fatalf("tree plan (fuse=%v): %v", fuse, err)
		}
	}
}

func TestPublicAggregates(t *testing.T) {
	walk := workload.RandomWalk(3000, 7, 500, 9)
	form, err := lwcomp.FORNS(128).Compress(walk)
	if err != nil {
		t.Fatal(err)
	}
	var wantMin, wantMax int64 = walk[0], walk[0]
	for _, v := range walk {
		if v < wantMin {
			wantMin = v
		}
		if v > wantMax {
			wantMax = v
		}
	}
	if got, err := lwcomp.Min(form); err != nil || got != wantMin {
		t.Fatalf("Min = %d, want %d (%v)", got, wantMin, err)
	}
	if got, err := lwcomp.Max(form); err != nil || got != wantMax {
		t.Fatalf("Max = %d, want %d (%v)", got, wantMax, err)
	}
	lc := workload.LowCardinality(3000, 16, 10)
	df, err := lwcomp.DictNS().Compress(lc)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for _, v := range lc {
		seen[v] = true
	}
	if got, err := lwcomp.DistinctCount(df); err != nil || got != int64(len(seen)) {
		t.Fatalf("DistinctCount = %d, want %d (%v)", got, len(seen), err)
	}
}

func TestPublicRicherModels(t *testing.T) {
	// Quadratic trend: poly2 must round-trip and beat linear.
	src := make([]int64, 8192)
	for i := range src {
		x := int64(i % 1024)
		src[i] = x*x/50 + int64(i%7)
	}
	for _, s := range []lwcomp.Scheme{lwcomp.Poly2NS(1024), lwcomp.PatchedLinearNS(1024)} {
		form, err := s.Compress(src)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		back, err := lwcomp.Decompress(form)
		if err != nil || !equal(back, src) {
			t.Fatalf("%s roundtrip: %v", s.Name(), err)
		}
	}
	// The parser reaches them too.
	for _, expr := range []string{"poly2ns[512]", "plinearns[512]", "poly2[1024]"} {
		if _, err := lwcomp.ParseScheme(expr); err != nil {
			t.Fatalf("ParseScheme(%q): %v", expr, err)
		}
	}
}

func TestPublicAnalyzerOptions(t *testing.T) {
	data := workload.SkewedMagnitude(20000, 40, 4)
	// Unbounded: elias wins on this workload.
	free, err := lwcomp.CompressBestChoice(data)
	if err != nil {
		t.Fatal(err)
	}
	// Budgeted: elias (≈6.0/element) must be excluded.
	tight, err := lwcomp.CompressBestWithOptions(data, lwcomp.AnalyzerOptions{CostBudget: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Desc == "elias" {
		t.Fatalf("budgeted winner = %q", tight.Desc)
	}
	if free.Eval.Bits > tight.Eval.Bits {
		t.Fatalf("unbounded winner (%d bits) larger than budgeted (%d bits)",
			free.Eval.Bits, tight.Eval.Bits)
	}
	// Extra candidates join the space.
	custom := lwcomp.SchemeCandidate(lwcomp.VNS(16))
	withExtra, err := lwcomp.CompressBestWithOptions(data, lwcomp.AnalyzerOptions{Extra: []lwcomp.Candidate{custom}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range withExtra.Ranking {
		if r.Desc == "vns" && r.Err == nil {
			found = true
		}
	}
	if !found {
		t.Fatal("extra candidate missing from ranking")
	}
	back, err := lwcomp.Decompress(tight.Form)
	if err != nil || !equal(back, data) {
		t.Fatalf("budgeted roundtrip: %v", err)
	}
}

func TestPublicPointLookup(t *testing.T) {
	walk := workload.RandomWalk(4096, 6, 0, 7)
	form, err := lwcomp.PFOR(512).Compress(walk)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range []int64{0, 2048, 4095} {
		got, err := lwcomp.PointLookup(form, row)
		if err != nil || got != walk[row] {
			t.Fatalf("PointLookup(%d) = %d, want %d (%v)", row, got, walk[row], err)
		}
	}
}
