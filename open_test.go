package lwcomp_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"lwcomp"
	"lwcomp/internal/storage"
)

// countingReaderAt wraps a bytes.Reader and records every positioned
// read — the instrument behind the PR's acceptance criterion that a
// point lookup on an opened container reads only the header, the
// block index, and the single resident block.
type countingReaderAt struct {
	data []byte

	mu     sync.Mutex
	calls  int
	total  int64
	ranges [][2]int64 // {offset, length} per ReadAt
}

func (c *countingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	c.mu.Lock()
	c.calls++
	c.total += int64(len(p))
	c.ranges = append(c.ranges, [2]int64{off, int64(len(p))})
	c.mu.Unlock()
	return bytes.NewReader(c.data).ReadAt(p, off)
}

func (c *countingReaderAt) reset() {
	c.mu.Lock()
	c.calls, c.total, c.ranges = 0, 0, nil
	c.mu.Unlock()
}

func (c *countingReaderAt) snapshot() (calls int, total int64, ranges [][2]int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls, c.total, append([][2]int64(nil), c.ranges...)
}

// sortedColumn returns a monotone column, so consecutive blocks carry
// disjoint [min, max] ranges and block skipping is exact.
func sortedColumn(n int) []int64 {
	src := make([]int64, n)
	for i := range src {
		src[i] = int64(3 * i)
	}
	return src
}

// buildContainer encodes src into a blocked column and serializes it
// as a v3 container.
func buildContainer(t *testing.T, src []int64, blockSize int) []byte {
	t.Helper()
	col, err := lwcomp.Encode(src, lwcomp.WithBlockSize(blockSize))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lwcomp.WriteColumns(&buf, []lwcomp.NamedColumn{{Name: "c", Col: col}}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// writeTemp writes data to a file in the test's temp dir.
func writeTemp(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "col.lwc")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// containerExtents opens data from disk and returns the first
// column's payload extents plus the payload region's file offset.
func containerExtents(t *testing.T, data []byte) ([]lwcomp.BlockExtent, int64) {
	t.Helper()
	cf, err := lwcomp.OpenContainer(writeTemp(t, data))
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	extents := cf.Extents(0)
	if extents == nil {
		t.Fatal("no extents on a v3 container")
	}
	// Payload region offset: prefix (14 bytes) + index length.
	payloadStart := int64(14) + int64(binary.LittleEndian.Uint64(data[6:14]))
	return extents, payloadStart
}

// TestOpenReaderLazyPointLookup is the acceptance criterion: opening
// reads only the header + index, and one point lookup reads exactly
// the single block covering the row.
func TestOpenReaderLazyPointLookup(t *testing.T) {
	src := sortedColumn(1 << 16)
	data := buildContainer(t, src, 4096)
	extents, payloadStart := containerExtents(t, data)
	if len(extents) != 16 {
		t.Fatalf("expected 16 blocks, got %d", len(extents))
	}

	ra := &countingReaderAt{data: data}
	col, err := lwcomp.OpenReader(ra, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	// Open must not touch the payload region.
	calls, total, ranges := ra.snapshot()
	for _, r := range ranges {
		if r[0]+r[1] > payloadStart {
			t.Fatalf("open read [%d, %d) past the index (payload starts at %d)", r[0], r[0]+r[1], payloadStart)
		}
	}
	if total > payloadStart+64 {
		t.Fatalf("open read %d bytes; header+index is only %d", total, payloadStart)
	}
	if calls == 0 {
		t.Fatal("open issued no reads")
	}

	// One lookup in the middle: exactly one read, covering exactly
	// the payload extent of the block that holds the row.
	const row = 9*4096 + 17
	blockIdx := row / 4096
	ra.reset()
	v, err := col.PointLookup(row)
	if err != nil {
		t.Fatal(err)
	}
	if v != src[row] {
		t.Fatalf("PointLookup(%d) = %d, want %d", row, v, src[row])
	}
	calls, total, ranges = ra.snapshot()
	if calls != 1 {
		t.Fatalf("point lookup issued %d reads, want 1: %v", calls, ranges)
	}
	want := extents[blockIdx]
	got := ranges[0]
	if got[0] != payloadStart+want.Offset || got[1] != want.Bytes {
		t.Fatalf("point lookup read [%d, %d), want block %d's extent [%d, %d)",
			got[0], got[0]+got[1], blockIdx, payloadStart+want.Offset, payloadStart+want.Offset+want.Bytes)
	}
	if total >= int64(len(data))/4 {
		t.Fatalf("point lookup read %d of %d container bytes", total, len(data))
	}
}

// TestOpenReaderRangeScanReadsOnlyStraddlingBlocks checks that
// SelectRange and CountRange on a lazily opened column fetch only the
// blocks their [min, max] stats cannot classify, and that Min/Max
// answer from the index without any read at all.
func TestOpenReaderRangeScanReadsOnlyStraddlingBlocks(t *testing.T) {
	src := sortedColumn(1 << 15)
	data := buildContainer(t, src, 4096)
	_, payloadStart := containerExtents(t, data)

	ra := &countingReaderAt{data: data}
	// Disable the cache so every fetch is visible to the counter.
	col, err := lwcomp.OpenReader(ra, int64(len(data)), lwcomp.WithBlockCache(0))
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	ra.reset()

	// [min of block 2, max of block 2]: blocks 0-1 miss, block 2 is
	// entirely inside (whole-run emit, no read), blocks 3+ miss.
	lo, hi := src[2*4096], src[3*4096-1]
	rows, err := col.SelectRange(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4096 || rows[0] != 2*4096 {
		t.Fatalf("SelectRange returned %d rows starting at %v", len(rows), rows[:1])
	}
	if calls, _, ranges := ra.snapshot(); calls != 0 {
		t.Fatalf("whole-block range issued %d reads: %v", calls, ranges)
	}

	// A range straddling the block 4 / block 5 boundary: exactly two
	// block fetches.
	lo, hi = src[5*4096]-30, src[5*4096]+30
	n, err := col.CountRange(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if n != 21 {
		t.Fatalf("CountRange = %d, want 21", n)
	}
	calls, _, ranges := ra.snapshot()
	if calls != 2 {
		t.Fatalf("straddling range issued %d reads, want 2: %v", calls, ranges)
	}
	for _, r := range ranges {
		if r[0] < payloadStart {
			t.Fatalf("range scan read the index region at %d", r[0])
		}
	}

	// Min/Max come from the block index: zero reads.
	ra.reset()
	if _, err := col.Min(); err != nil {
		t.Fatal(err)
	}
	if _, err := col.Max(); err != nil {
		t.Fatal(err)
	}
	if calls, _, _ := ra.snapshot(); calls != 0 {
		t.Fatalf("Min/Max issued %d reads, want 0", calls)
	}
}

// TestOpenFileTruncated cuts a container at every structurally
// interesting point and expects open (not first touch) to fail —
// the index invariant makes truncation detectable up front.
func TestOpenFileTruncated(t *testing.T) {
	data := buildContainer(t, sortedColumn(1<<13), 2048)
	indexLen := int64(binary.LittleEndian.Uint64(data[6:14]))
	payloadStart := 14 + indexLen
	cuts := map[string]int64{
		"mid-magic":        2,
		"mid-prefix":       9,
		"mid-index":        14 + indexLen/2,
		"index-only":       payloadStart,
		"mid-payload":      payloadStart + (int64(len(data))-payloadStart)/2,
		"one-byte-missing": int64(len(data)) - 1,
	}
	for name, cut := range cuts {
		t.Run(name, func(t *testing.T) {
			if _, err := lwcomp.OpenFile(writeTemp(t, data[:cut])); err == nil {
				t.Fatalf("opened a container truncated to %d of %d bytes", cut, len(data))
			}
		})
	}
	// Sanity: the untruncated file opens.
	col, err := lwcomp.OpenFile(writeTemp(t, data))
	if err != nil {
		t.Fatal(err)
	}
	col.Close()
}

// TestOpenReaderCorruptBlockDetectedLazily flips one payload byte:
// open succeeds, queries that avoid the block succeed, and the first
// touch of the corrupt block reports ErrChecksum.
func TestOpenReaderCorruptBlockDetectedLazily(t *testing.T) {
	src := sortedColumn(1 << 14)
	data := buildContainer(t, src, 4096)
	extents, payloadStart := containerExtents(t, data)

	// Corrupt the middle of the last block's payload.
	last := extents[len(extents)-1]
	data[payloadStart+last.Offset+last.Bytes/2] ^= 0xFF

	col, err := lwcomp.OpenReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatalf("open should not touch payloads, got %v", err)
	}
	defer col.Close()

	// Blocks before the corrupt one stay readable.
	if v, err := col.PointLookup(0); err != nil || v != src[0] {
		t.Fatalf("PointLookup(0) = %d, %v", v, err)
	}
	// First touch of the corrupt block reports the checksum.
	if _, err := col.PointLookup(int64(len(src) - 1)); !errors.Is(err, lwcomp.ErrChecksum) {
		t.Fatalf("corrupt block returned %v, want ErrChecksum", err)
	}
	// A whole-column aggregate hits it too.
	if _, err := col.Sum(); !errors.Is(err, lwcomp.ErrChecksum) {
		t.Fatalf("Sum over corrupt block returned %v, want ErrChecksum", err)
	}
	// And the healthy blocks keep working afterwards.
	if v, err := col.PointLookup(4096); err != nil || v != src[4096] {
		t.Fatalf("PointLookup(4096) after failure = %d, %v", v, err)
	}
}

// TestOpenFileV1Container routes a v1 (single-form) container through
// OpenFile: it opens eagerly but serves the same queries.
func TestOpenFileV1Container(t *testing.T) {
	src := sortedColumn(5000)
	form, err := lwcomp.CompressBest(src)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lwcomp.WriteContainer(&buf, []lwcomp.StoredColumn{{Name: "v1col", Form: form}}); err != nil {
		t.Fatal(err)
	}
	col, err := lwcomp.OpenFile(writeTemp(t, buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	if col.NumBlocks() != 1 || col.N != len(src) {
		t.Fatalf("v1 adoption: %d blocks, n=%d", col.NumBlocks(), col.N)
	}
	back, err := col.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	if !equal(back, src) {
		t.Fatal("v1 round trip mismatch")
	}
	if v, err := col.PointLookup(1234); err != nil || v != src[1234] {
		t.Fatalf("PointLookup = %d, %v", v, err)
	}
}

// TestOpenFileV2Container routes a v2 (blocked, whole-body CRC)
// container through OpenFile's eager fallback.
func TestOpenFileV2Container(t *testing.T) {
	src := sortedColumn(1 << 14)
	col, err := lwcomp.Encode(src, lwcomp.WithBlockSize(4096))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := storage.WriteContainerV2(&buf, []storage.BlockedColumn{{Name: "v2col", Col: col}}); err != nil {
		t.Fatal(err)
	}
	opened, err := lwcomp.OpenFile(writeTemp(t, buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()
	if opened.NumBlocks() != col.NumBlocks() {
		t.Fatalf("v2 open: %d blocks, want %d", opened.NumBlocks(), col.NumBlocks())
	}
	sum1, err := col.Sum()
	if err != nil {
		t.Fatal(err)
	}
	sum2, err := opened.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if sum1 != sum2 {
		t.Fatalf("v2 sums differ: %d != %d", sum1, sum2)
	}
}

// TestOpenFileColumnSelection: multi-column containers require
// WithColumn through OpenFile; OpenContainer hands out every handle.
func TestOpenFileColumnSelection(t *testing.T) {
	a := sortedColumn(4096)
	b := make([]int64, 4096)
	for i := range b {
		b[i] = int64(-i)
	}
	colA, err := lwcomp.Encode(a, lwcomp.WithBlockSize(1024))
	if err != nil {
		t.Fatal(err)
	}
	colB, err := lwcomp.Encode(b, lwcomp.WithBlockSize(1024))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = lwcomp.WriteColumns(&buf, []lwcomp.NamedColumn{{Name: "a", Col: colA}, {Name: "b", Col: colB}})
	if err != nil {
		t.Fatal(err)
	}
	path := writeTemp(t, buf.Bytes())

	if _, err := lwcomp.OpenFile(path); err == nil {
		t.Fatal("OpenFile accepted a two-column container without WithColumn")
	}
	col, err := lwcomp.OpenFile(path, lwcomp.WithColumn("b"))
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	if v, err := col.PointLookup(100); err != nil || v != -100 {
		t.Fatalf("column b lookup = %d, %v", v, err)
	}
	if _, err := lwcomp.OpenFile(path, lwcomp.WithColumn("nope")); err == nil {
		t.Fatal("OpenFile found a column that does not exist")
	}

	cf, err := lwcomp.OpenContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	if got := len(cf.Columns()); got != 2 {
		t.Fatalf("OpenContainer sees %d columns, want 2", got)
	}
}

// TestOpenReaderCacheEviction exercises the LRU under a budget that
// holds roughly one block: every pass over the column keeps reading,
// while the default budget serves the second pass entirely from
// cache.
func TestOpenReaderCacheEviction(t *testing.T) {
	src := sortedColumn(1 << 15)
	data := buildContainer(t, src, 4096)
	extents, _ := containerExtents(t, data)
	var maxExtent int64
	for _, e := range extents {
		if e.Bytes > maxExtent {
			maxExtent = e.Bytes
		}
	}
	want := int64(0)
	for _, v := range src {
		want += v
	}

	// Tiny budget: at most one block resident, so a second full pass
	// still fetches nearly every block from the reader.
	ra := &countingReaderAt{data: data}
	col, err := lwcomp.OpenReader(ra, int64(len(data)),
		lwcomp.WithBlockCache(maxExtent+8), lwcomp.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		ra.reset()
		sum, err := col.Sum()
		if err != nil {
			t.Fatal(err)
		}
		if sum != want {
			t.Fatalf("pass %d sum = %d, want %d", pass, sum, want)
		}
		if calls, _, _ := ra.snapshot(); calls < len(extents)-1 {
			t.Fatalf("pass %d with a one-block cache issued only %d reads for %d blocks",
				pass, calls, len(extents))
		}
	}
	col.Close()

	// Default budget: the second pass is read-free.
	ra = &countingReaderAt{data: data}
	col, err = lwcomp.OpenReader(ra, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	if _, err := col.Sum(); err != nil {
		t.Fatal(err)
	}
	ra.reset()
	sum, err := col.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if sum != want {
		t.Fatalf("cached sum = %d, want %d", sum, want)
	}
	if calls, _, ranges := ra.snapshot(); calls != 0 {
		t.Fatalf("warm pass issued %d reads: %v", calls, ranges)
	}
}

// TestOpenFileMmap exercises the mmap path (falling back silently
// where unsupported) against the plain path.
func TestOpenFileMmap(t *testing.T) {
	src := sortedColumn(1 << 14)
	data := buildContainer(t, src, 4096)
	col, err := lwcomp.OpenFile(writeTemp(t, data), lwcomp.WithMmap(true))
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	back, err := col.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	if !equal(back, src) {
		t.Fatal("mmap round trip mismatch")
	}
	if v, err := col.PointLookup(777); err != nil || v != src[777] {
		t.Fatalf("mmap PointLookup = %d, %v", v, err)
	}
}

// TestRewriteLazyColumn writes a lazily opened column back out —
// blocks stream through the source — and the rewrite round-trips.
func TestRewriteLazyColumn(t *testing.T) {
	src := sortedColumn(1 << 14)
	data := buildContainer(t, src, 4096)
	col, err := lwcomp.OpenFile(writeTemp(t, data))
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	var buf bytes.Buffer
	if err := lwcomp.WriteColumns(&buf, []lwcomp.NamedColumn{{Name: "rw", Col: col}}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		// Same blocks, same forms, same order — the rewrite is
		// byte-identical apart from the column name, so just verify
		// the content round-trips.
		cols, err := lwcomp.ReadColumns(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		back, err := cols[0].Col.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		if !equal(back, src) {
			t.Fatal("rewritten container does not round-trip")
		}
	}
}

// eofReaderAt returns (n, io.EOF) on reads ending exactly at EOF —
// explicitly permitted by the io.ReaderAt contract. The last block of
// a container always ends there, so the open path must accept it.
type eofReaderAt struct {
	data []byte
}

func (r *eofReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(r.data)) {
		return 0, io.EOF
	}
	n := copy(p, r.data[off:])
	if off+int64(n) == int64(len(r.data)) {
		return n, io.EOF
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// TestOpenReaderEOFAtExactEnd pins the io.ReaderAt contract corner:
// a conforming reader may return io.EOF alongside a full read, and
// the final block's payload always ends at end-of-file.
func TestOpenReaderEOFAtExactEnd(t *testing.T) {
	src := sortedColumn(1 << 14)
	data := buildContainer(t, src, 4096)
	col, err := lwcomp.OpenReader(&eofReaderAt{data: data}, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	last := int64(len(src) - 1)
	if v, err := col.PointLookup(last); err != nil || v != src[last] {
		t.Fatalf("PointLookup(last) = %d, %v", v, err)
	}
	sum, err := col.Sum()
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, v := range src {
		want += v
	}
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}
