// Package lwcomp is a compositional framework for lightweight
// columnar compression, reproducing Rozenberg, "Decomposing and
// Re-Composing Lightweight Compression Schemes — And Why It Matters"
// (ICDE 2018).
//
// The framework's view, following the paper: a compressed column is a
// tree of schemes over pure constituent columns (a Form); schemes
// compose by substituting a child column's form (Compose) and
// decompose by structural rewrites (DecomposeRLE, DecomposeFOR);
// decompression is an operator plan over the same columnar operators
// a query engine runs, so queries can execute directly on compressed
// forms (Sum, SelectRange, ApproxSum).
//
// # Quick start
//
//	dates := workloadOrYourData()
//	col, err := lwcomp.Encode(dates,             // the analyzer picks a composite
//	    lwcomp.WithBlockSize(1<<16))             // scheme per 64Ki-value block
//	...
//	back, err := col.Decompress()                // or query without decompressing:
//	total, err := col.Sum()
//	rows, err := col.SelectRange(lo, hi)         // skips blocks via [min,max] stats
//	fmt.Println(col.Describe())                  // which scheme won in which block
//
// Encode with no options compresses the whole column as one block —
// the original CompressBest behavior with a query handle around it.
// WithScheme pins the scheme, WithCostBudget bounds decompression
// cost, WithParallelism bounds concurrent block encodes, and a
// streaming ColumnBuilder (Append/Flush) covers ingest. Containers
// written by WriteColumns carry a self-contained block index with
// per-block checksums (format v3); ReadColumns also accepts v2 and
// v1 containers.
//
// # On-disk columns
//
// Because every block is independently decodable, a container need
// not be read to be queried. OpenFile opens one by reading only the
// header and block index, then fetches, verifies and decodes
// individual block payloads at first touch:
//
//	col, err := lwcomp.OpenFile("dates.lwc",
//	    lwcomp.WithBlockCache(64<<20),   // LRU over verified block payloads
//	    lwcomp.WithMmap(true))           // optional, where the platform allows
//	defer col.Close()
//	v, err := col.PointLookup(1_000_000) // reads exactly one block
//
// OpenContainer is the multi-column variant, OpenReader the
// io.ReaderAt one; see open.go.
//
// The original free functions (Compress, CompressBest, Sum,
// SelectRange, ...) remain and are thin wrappers over a single-block
// Column.
//
// Individual schemes and explicit composition:
//
//	s := lwcomp.Compose(lwcomp.RLE(), map[string]lwcomp.Scheme{
//	    "lengths": lwcomp.NS(),
//	    "values":  lwcomp.Compose(lwcomp.Delta(), map[string]lwcomp.Scheme{"deltas": lwcomp.NS()}),
//	})
//	form, err := s.Compress(dates)
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// reproduction results.
package lwcomp

import (
	"io"

	"lwcomp/internal/blocked"
	"lwcomp/internal/column"
	"lwcomp/internal/core"
	"lwcomp/internal/exec"
	"lwcomp/internal/query"
	"lwcomp/internal/scheme"
	"lwcomp/internal/storage"
)

// Form is a compressed column: a tree of schemes over pure
// constituent columns. See core.Form for field documentation.
type Form = core.Form

// Scheme is the compress/decompress contract of a (possibly
// composite) compression scheme.
type Scheme = core.Scheme

// Params carries a form's scalar parameters.
type Params = core.Params

// Stats summarizes a column for scheme selection.
type Stats = column.Stats

// Choice reports the analyzer's selected scheme and ranking.
type Choice = core.Choice

// Candidate is one point in the composite-scheme search space.
type Candidate = core.Candidate

// Plan is an operator-plan decompression program.
type Plan = exec.Plan

// Interval is a certain enclosure of an approximate query result.
type Interval = query.Interval

// GradualSummer refines an approximate sum to exactness segment by
// segment.
type GradualSummer = query.GradualSummer

// StoredColumn pairs a name with a form inside a container file.
type StoredColumn = storage.Column

// Errors re-exported for errors.Is checks.
var (
	ErrUnknownScheme    = core.ErrUnknownScheme
	ErrNotRepresentable = core.ErrNotRepresentable
	ErrCorruptForm      = core.ErrCorruptForm
	ErrNoCandidate      = core.ErrNoCandidate
	// ErrCorrupt is returned for structurally invalid serialized
	// forms and containers; ErrChecksum when a container's CRC does
	// not match. Both are permanent: WithReadRetry never retries
	// them, and a block failing with either is quarantined on its
	// column.
	ErrCorrupt  = storage.ErrCorrupt
	ErrChecksum = storage.ErrChecksum
	// ErrQuarantined marks fetches of blocks that previously failed
	// permanently and were quarantined; the condemning error stays in
	// the chain. Degraded scans skip such blocks (see
	// WithDegradedScan); default scans surface this error.
	ErrQuarantined = blocked.ErrQuarantined
)

// Compress encodes src with the named registered scheme ("ns",
// "rle", "for", ...; see Schemes).
func Compress(schemeName string, src []int64) (*Form, error) {
	return core.Compress(schemeName, src)
}

// Decompress reconstructs the column of any form tree.
func Decompress(f *Form) ([]int64, error) { return core.Decompress(f) }

// DecompressViaPlan reconstructs the column by building and executing
// the scheme's columnar operator plan (the paper's Algorithms 1/2
// route) instead of the fused kernel. With fuse set, the engine may
// substitute recognized idioms (run expansion, segment replication).
func DecompressViaPlan(f *Form, fuse bool) ([]int64, error) {
	return core.DecompressViaPlan(f, fuse)
}

// PlanOf returns the operator plan of a plannable form along with the
// plan's input environment.
func PlanOf(f *Form) (*Plan, map[string][]int64, error) { return core.PlanOf(f) }

// PlanTree builds one flat operator plan for the whole form tree,
// inlining plannable children (their inputs appear as dotted paths
// like "values.deltas"); only physical leaves remain as inputs.
func PlanTree(f *Form) (*Plan, map[string][]int64, error) { return core.PlanTree(f) }

// DecompressViaTreePlan reconstructs the column by executing the
// whole-tree plan of PlanTree.
func DecompressViaTreePlan(f *Form, fuse bool) ([]int64, error) {
	return core.DecompressViaTreePlan(f, fuse)
}

// Compose builds outer ∘ inner: compress with outer, then compress
// the named constituent columns with the inner schemes.
func Compose(outer Scheme, inner map[string]Scheme) Scheme { return core.Compose(outer, inner) }

// Schemes returns the registered scheme names.
func Schemes() []string { return core.Schemes() }

// ParseScheme builds a (possibly composite) scheme from an expression
// in the syntax Form.Describe emits, e.g.
// "rle(lengths=ns, values=delta(deltas=vns[32]))".
func ParseScheme(expr string) (Scheme, error) { return scheme.Parse(expr) }

// Analyze computes column statistics in one pass.
func Analyze(src []int64) Stats { return column.Analyze(src) }

// CompressBest searches the default composite-scheme space for the
// smallest encoding of src and returns the winning form.
func CompressBest(src []int64) (*Form, error) {
	choice, err := CompressBestChoice(src)
	if err != nil {
		return nil, err
	}
	return choice.Form, nil
}

// CompressBestChoice is CompressBest returning the full analyzer
// report (winner, evaluation, per-candidate ranking).
func CompressBestChoice(src []int64) (*Choice, error) {
	return CompressBestWithOptions(src, AnalyzerOptions{})
}

// AnalyzerOptions tunes the composite-scheme search.
type AnalyzerOptions struct {
	// CostBudget, when positive, disqualifies candidates whose
	// abstract decompression cost per element exceeds it — the
	// paper's bandwidth constraint ("overly-demanding decompression
	// would slow down … below what the incoming bandwidth allows").
	// A plain copy costs about 1.0; NS about 1.5; Elias about 6.0.
	CostBudget float64
	// SampleSize caps the prefix sample candidates are evaluated on;
	// zero means 65536.
	SampleSize int
	// Extra appends additional candidates (e.g. hand-built
	// composites) to the default stats-pruned space.
	Extra []Candidate
	// TrialK bounds how many of the top estimate-ranked candidates
	// are trial-compressed; zero means the default (3). See
	// WithSearchEffort.
	TrialK int
	// Exhaustive disables estimate pruning and trial-compresses
	// every candidate — the ground-truth search. See
	// WithExhaustiveSearch.
	Exhaustive bool
}

// CompressBestWithOptions searches the composite-scheme space under
// the given options and returns the analyzer's full report.
func CompressBestWithOptions(src []int64, opts AnalyzerOptions) (*Choice, error) {
	s := core.GetScratch()
	defer s.Release()
	st := core.CollectStats(src, s)
	defer st.ReleaseSeg(s)
	sample := opts.SampleSize
	if sample == 0 {
		sample = 1 << 16
	}
	a := &core.Analyzer{
		Candidates: append(scheme.DefaultCandidates(&st), opts.Extra...),
		CostBudget: opts.CostBudget,
		SampleSize: sample,
		TrialK:     opts.TrialK,
		Exhaustive: opts.Exhaustive,
		Stats:      &st,
		Scratch:    s,
	}
	return a.Best(src)
}

// SchemeCandidate adapts any Scheme into an analyzer Candidate for
// AnalyzerOptions.Extra.
func SchemeCandidate(s Scheme) Candidate { return core.FromScheme(s) }

// Basic schemes. Each returns a ready-to-use Scheme value.

// ID returns the identity (no-compression) scheme.
func ID() Scheme { return scheme.ID{} }

// NS returns null suppression (bit packing at minimal width).
func NS() Scheme { return scheme.NS{} }

// VNS returns variable-width NS with the given mini-block length
// (0 for the default).
func VNS(block int) Scheme { return scheme.VNS{Block: block} }

// Varint returns LEB128 variable-byte encoding.
func Varint() Scheme { return scheme.Varint{} }

// Elias returns Elias-delta bit-level variable-width encoding.
func Elias() Scheme { return scheme.Elias{} }

// Delta returns difference coding.
func Delta() Scheme { return scheme.Delta{} }

// RLE returns run-length encoding.
func RLE() Scheme { return scheme.RLE{} }

// RPE returns run-position encoding.
func RPE() Scheme { return scheme.RPE{} }

// FOR returns frame-of-reference with the given segment length
// (0 for the default).
func FOR(segLen int) Scheme { return scheme.FOR{SegLen: segLen} }

// Dict returns sorted-dictionary encoding.
func Dict() Scheme { return scheme.Dict{} }

// PFOR returns patched FOR (the L0 extension; Patch ∘ FOR).
func PFOR(segLen int) Scheme { return scheme.PFOR{SegLen: segLen} }

// StepNS returns the step-function model with NS residuals —
// value-equivalent to FOR by the paper's identity.
func StepNS(segLen int) Scheme {
	return scheme.ModelResidual{Fitter: scheme.StepFitter{SegLen: segLen}}
}

// LinearNS returns the piecewise-linear model with NS residuals.
func LinearNS(segLen int) Scheme { return scheme.LinearNS(segLen) }

// Poly2NS returns the piecewise-quadratic model with NS residuals —
// the paper's "stepwise low-degree polynomials" enrichment.
func Poly2NS(segLen int) Scheme {
	return scheme.ModelResidual{Fitter: scheme.Poly2Fitter{SegLen: segLen}}
}

// PatchedLinearNS returns the piecewise-linear model with NS
// residuals and L0 patches for outliers — the paper's L∞ and L0
// extensions composed.
func PatchedLinearNS(segLen int) Scheme {
	return scheme.PatchedModel{Fitter: scheme.LinearFitter{SegLen: segLen}}
}

// Convenience composites matching common practice.

// RLENS returns RLE with both constituent columns bit-packed.
func RLENS() Scheme { return scheme.RLEComposite() }

// RLEDeltaNS returns the paper's §I composition: RLE, DELTA on the
// run values, NS at the leaves.
func RLEDeltaNS() Scheme { return scheme.RLEDeltaComposite() }

// FORNS returns FOR with bit-packed refs and offsets.
func FORNS(segLen int) Scheme { return scheme.FORComposite(segLen) }

// DictNS returns DICT with bit-packed codes.
func DictNS() Scheme { return scheme.DictComposite() }

// Rewrites (the paper's decomposition identities).

// DecomposeRLE rewrites an RLE form as (ID, DELTA) ∘ RPE.
func DecomposeRLE(f *Form) (*Form, error) { return scheme.DecomposeRLE(f) }

// RecomposeRLE inverts DecomposeRLE.
func RecomposeRLE(f *Form) (*Form, error) { return scheme.RecomposeRLE(f) }

// PartialDecompressRLE materializes an RLE form's run positions,
// yielding an RPE form (larger, faster to decompress).
func PartialDecompressRLE(f *Form) (*Form, error) { return scheme.PartialDecompressRLE(f) }

// DecomposeFOR rewrites a FOR form as STEPFUNCTION + NS.
func DecomposeFOR(f *Form) (*Form, error) { return scheme.DecomposeFOR(f) }

// RecomposeFOR inverts DecomposeFOR.
func RecomposeFOR(f *Form) (*Form, error) { return scheme.RecomposeFOR(f) }

// Queries on compressed forms. Each free function is a thin wrapper
// over a single-block Column — the Column methods are the primary
// API; these remain for form-level use and backward compatibility.

// asColumn wraps a form as a stat-less single-block column; queries
// on it delegate straight to the form paths, so the wrappers cost
// one allocation and nothing else.
func asColumn(f *Form) (*Column, error) { return blocked.FromForm(f, false) }

// Sum returns the exact column sum, using the form's structure to
// avoid materialization where possible.
func Sum(f *Form) (int64, error) {
	c, err := asColumn(f)
	if err != nil {
		return 0, err
	}
	return c.Sum()
}

// CountRange counts elements in [lo, hi] with segment/run pruning.
func CountRange(f *Form, lo, hi int64) (int64, error) {
	c, err := asColumn(f)
	if err != nil {
		return 0, err
	}
	return c.CountRange(lo, hi)
}

// SelectRange returns the row positions of elements in [lo, hi].
func SelectRange(f *Form, lo, hi int64) ([]int64, error) {
	c, err := asColumn(f)
	if err != nil {
		return nil, err
	}
	return c.SelectRange(lo, hi)
}

// PointLookup returns one element by row position using the form's
// random-access structure.
func PointLookup(f *Form, row int64) (int64, error) {
	c, err := asColumn(f)
	if err != nil {
		return 0, err
	}
	return c.PointLookup(row)
}

// Min returns the exact column minimum using the form's structure
// (FOR refs, DICT dictionary, run values).
func Min(f *Form) (int64, error) {
	c, err := asColumn(f)
	if err != nil {
		return 0, err
	}
	return c.Min()
}

// Max returns the exact column maximum.
func Max(f *Form) (int64, error) {
	c, err := asColumn(f)
	if err != nil {
		return 0, err
	}
	return c.Max()
}

// DistinctCount returns the number of distinct values (O(1) on DICT
// and CONST forms).
func DistinctCount(f *Form) (int64, error) { return query.DistinctCount(f) }

// ApproxSum bounds the sum from the form's model part only.
func ApproxSum(f *Form) (Interval, error) { return query.ApproxSum(f) }

// NewGradualSummer prepares gradual-refinement summation over a FOR
// form.
func NewGradualSummer(f *Form) (*GradualSummer, error) { return query.NewGradualSummer(f) }

// Serialization.

// EncodeForm serializes a form tree to bytes.
func EncodeForm(f *Form) ([]byte, error) { return storage.EncodeForm(f) }

// DecodeForm deserializes a form tree; it returns the form and the
// bytes consumed.
func DecodeForm(data []byte) (*Form, int, error) { return storage.DecodeForm(data) }

// EncodedSize returns the exact serialized size of a form in bytes.
func EncodedSize(f *Form) (int, error) { return storage.EncodedSize(f) }

// WriteContainer writes named compressed columns as a checksummed
// container file.
func WriteContainer(w io.Writer, cols []StoredColumn) error {
	return storage.WriteContainer(w, cols)
}

// ReadContainer reads a container written by WriteContainer.
func ReadContainer(r io.Reader) ([]StoredColumn, error) { return storage.ReadContainer(r) }
