//go:build race

package lwcomp_test

// raceEnabled reports whether the race detector is active. Under the
// detector sync.Pool deliberately bypasses reuse to expose races, so
// allocation-count assertions are skipped.
const raceEnabled = true
